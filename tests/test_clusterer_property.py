"""Property-based tests for the streaming clusterer's invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClustererConfig, MaxClusterSize, StreamingGraphClusterer
from repro.streams import add_edge, delete_edge

# Operation stream over a small vertex universe: (u, v) toggles the edge.
_ops = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=120,
)


def _drive(clusterer: StreamingGraphClusterer, ops) -> set:
    live: set = set()
    for a, b in ops:
        edge = (min(a, b), max(a, b))
        if edge in live:
            clusterer.apply(delete_edge(*edge))
            live.discard(edge)
        else:
            clusterer.apply(add_edge(*edge))
            live.add(edge)
    return live


@settings(max_examples=80, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2**20), capacity=st.integers(1, 30))
def test_sample_is_subset_of_live_edges(ops, seed, capacity):
    clusterer = StreamingGraphClusterer(
        ClustererConfig(reservoir_capacity=capacity, seed=seed)
    )
    live = _drive(clusterer, ops)
    sampled = clusterer.reservoir_edges()
    assert len(sampled) == len(set(sampled))
    assert set(sampled) <= live
    assert clusterer.graph.num_edges == len(live)


@settings(max_examples=80, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2**20))
def test_snapshot_is_a_partition_of_seen_vertices(ops, seed):
    clusterer = StreamingGraphClusterer(
        ClustererConfig(reservoir_capacity=10, seed=seed)
    )
    _drive(clusterer, ops)
    snapshot = clusterer.snapshot()
    seen = set(clusterer.vertices())
    assert set(snapshot.vertices()) == seen
    assert sum(snapshot.sizes()) == len(seen)
    assert snapshot.num_clusters == clusterer.num_clusters


@settings(max_examples=80, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2**20))
def test_clusters_refine_true_components(ops, seed):
    """Sampling can only *split* components, never join separate ones:
    every declared cluster must lie inside one true component."""
    clusterer = StreamingGraphClusterer(
        ClustererConfig(reservoir_capacity=5, seed=seed)
    )
    _drive(clusterer, ops)
    true_components = clusterer.graph.connected_components()
    label_of = {}
    for index, component in enumerate(true_components):
        for v in component:
            label_of[v] = index
    for cluster in clusterer.snapshot().clusters():
        labels = {label_of[v] for v in cluster}
        assert len(labels) == 1


@settings(max_examples=60, deadline=None)
@given(
    ops=_ops,
    seed=st.integers(0, 2**20),
    limit=st.integers(1, 6),
)
def test_max_cluster_size_invariant_holds_throughout(ops, seed, limit):
    clusterer = StreamingGraphClusterer(
        ClustererConfig(
            reservoir_capacity=20, seed=seed, constraint=MaxClusterSize(limit)
        )
    )
    live: set = set()
    for a, b in ops:
        edge = (min(a, b), max(a, b))
        if edge in live:
            clusterer.apply(delete_edge(*edge))
            live.discard(edge)
        else:
            clusterer.apply(add_edge(*edge))
            live.add(edge)
        assert clusterer.snapshot().max_cluster_size <= limit


@settings(max_examples=50, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2**20))
def test_backends_agree_on_reservoir_subgraph(ops, seed):
    """With identical seeds the sampling decisions match, so the HDT and
    naive backends must produce identical clusterings."""
    hdt = StreamingGraphClusterer(
        ClustererConfig(reservoir_capacity=8, seed=seed, connectivity_backend="hdt")
    )
    naive = StreamingGraphClusterer(
        ClustererConfig(reservoir_capacity=8, seed=seed, connectivity_backend="naive")
    )
    _drive(hdt, ops)
    _drive(naive, ops)
    assert sorted(hdt.reservoir_edges()) == sorted(naive.reservoir_edges())
    assert hdt.snapshot() == naive.snapshot()
