"""Unit tests for the stream generators."""

import math

import pytest

from repro.graph import AdjacencyGraph, graph_from_events
from repro.streams import (
    EventKind,
    count_kinds,
    drifting_sbm_stream,
    erdos_renyi_edges,
    planted_partition,
    sbm_stream,
)


class TestPlantedPartition:
    def test_vertex_and_community_counts(self):
        graph = planted_partition(100, 5, 0.3, 0.01, seed=1)
        assert graph.num_vertices == 100
        assert graph.truth.num_clusters == 5
        assert all(s == 20 for s in graph.truth.sizes())

    def test_no_duplicates_or_self_loops(self):
        graph = planted_partition(80, 4, 0.4, 0.05, seed=2)
        assert len(set(graph.edges)) == len(graph.edges)
        assert all(u != v for u, v in graph.edges)

    def test_edge_counts_near_expectation(self):
        n, k, p_in, p_out = 400, 4, 0.2, 0.01
        graph = planted_partition(n, k, p_in, p_out, seed=3)
        size = n // k
        expected_intra = k * size * (size - 1) / 2 * p_in
        expected_inter = (k * (k - 1) / 2) * size * size * p_out
        intra = sum(1 for u, v in graph.edges if graph.truth.same_cluster(u, v))
        inter = graph.num_edges - intra
        assert abs(intra - expected_intra) < 6 * math.sqrt(expected_intra)
        assert abs(inter - expected_inter) < 6 * math.sqrt(expected_inter)

    def test_determinism(self):
        a = planted_partition(50, 2, 0.3, 0.02, seed=9)
        b = planted_partition(50, 2, 0.3, 0.02, seed=9)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = planted_partition(50, 2, 0.3, 0.02, seed=1)
        b = planted_partition(50, 2, 0.3, 0.02, seed=2)
        assert a.edges != b.edges

    def test_extreme_probabilities(self):
        empty = planted_partition(20, 2, 0.0, 0.0, seed=1)
        assert empty.num_edges == 0
        full = planted_partition(10, 1, 1.0, 0.0, seed=1)
        assert full.num_edges == 45

    def test_validation(self):
        with pytest.raises(ValueError):
            planted_partition(5, 10, 0.1, 0.1)
        with pytest.raises(ValueError):
            planted_partition(10, 2, 1.5, 0.1)


class TestErdosRenyi:
    def test_density(self):
        edges = erdos_renyi_edges(200, 0.05, seed=4)
        expected = 200 * 199 / 2 * 0.05
        assert abs(len(edges) - expected) < 6 * math.sqrt(expected)

    def test_no_structure_needed(self):
        assert erdos_renyi_edges(10, 0.0, seed=1) == []


class TestSbmStream:
    def test_stream_is_shuffled_insert_only(self):
        events, truth = sbm_stream(60, 3, 0.3, 0.02, seed=5)
        counts = count_kinds(events)
        assert counts[EventKind.ADD_EDGE] == len(events)
        graph = graph_from_events(events)
        assert graph.num_vertices <= 60
        assert truth.num_clusters == 3

    def test_stream_order_differs_from_generation_order(self):
        graph = planted_partition(60, 3, 0.3, 0.02, seed=5)
        events, _ = sbm_stream(60, 3, 0.3, 0.02, seed=5)
        assert [e.edge for e in events] != graph.edges


class TestDriftingStream:
    def test_phases_well_formed(self):
        phases = drifting_sbm_stream(80, 4, 0.3, 0.01, num_phases=4, seed=6)
        assert len(phases) == 4
        graph = AdjacencyGraph()
        for phase in phases:
            for event in phase.events:
                if event.kind is EventKind.ADD_EDGE:
                    assert graph.add_edge(event.u, event.v), "duplicate add"
                else:
                    assert graph.remove_edge(event.u, event.v), "delete of absent"
            assert phase.truth.num_vertices == 80

    def test_later_phases_contain_deletions(self):
        phases = drifting_sbm_stream(80, 4, 0.3, 0.01, num_phases=3, seed=7)
        deletion_counts = [
            count_kinds(phase.events)[EventKind.DELETE_EDGE] for phase in phases
        ]
        assert deletion_counts[0] == 0
        assert all(count > 0 for count in deletion_counts[1:])

    def test_truth_changes_between_phases(self):
        phases = drifting_sbm_stream(80, 4, 0.3, 0.01, num_phases=2, seed=8)
        assert phases[0].truth != phases[1].truth

    def test_migration_fraction_respected(self):
        phases = drifting_sbm_stream(
            100, 4, 0.3, 0.01, num_phases=2, migrate_fraction=0.1, seed=9
        )
        before = phases[0].truth.labels()
        after = phases[1].truth.labels()
        moved = sum(1 for v in before if before[v] != after[v])
        assert 1 <= moved <= 20  # 10 sampled movers; some may return by chance
