"""Unit tests for the constraint policies."""

import pytest

from repro.connectivity import NaiveDynamicConnectivity
from repro.core import (
    CompositeConstraint,
    MaxClusterSize,
    MinClusterCount,
    Unconstrained,
)


@pytest.fixture
def two_pairs():
    """Connectivity with components {1,2}, {3,4}, and singleton 5."""
    conn = NaiveDynamicConnectivity()
    conn.insert_edge(1, 2)
    conn.insert_edge(3, 4)
    conn.add_vertex(5)
    return conn


class TestUnconstrained:
    def test_always_allows(self, two_pairs):
        policy = Unconstrained()
        assert policy.allows(two_pairs, 1, 3)
        assert policy.allows(two_pairs, 1, 2)

    def test_repr(self):
        assert repr(Unconstrained()) == "Unconstrained()"


class TestMaxClusterSize:
    def test_blocks_oversized_merge(self, two_pairs):
        policy = MaxClusterSize(3)
        assert not policy.allows(two_pairs, 1, 3)  # 2 + 2 > 3

    def test_allows_fitting_merge(self, two_pairs):
        policy = MaxClusterSize(3)
        assert policy.allows(two_pairs, 1, 5)  # 2 + 1 <= 3

    def test_internal_edges_always_allowed(self, two_pairs):
        policy = MaxClusterSize(1)
        assert policy.allows(two_pairs, 1, 2)  # same component already

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            MaxClusterSize(0)

    def test_repr_mentions_limit(self):
        assert "limit=7" in repr(MaxClusterSize(7))


class TestMinClusterCount:
    def test_blocks_merge_at_floor(self, two_pairs):
        # 3 components currently; floor of 3 forbids any merge.
        policy = MinClusterCount(3)
        assert not policy.allows(two_pairs, 1, 3)

    def test_allows_merge_above_floor(self, two_pairs):
        policy = MinClusterCount(2)
        assert policy.allows(two_pairs, 1, 3)

    def test_internal_edges_always_allowed(self, two_pairs):
        policy = MinClusterCount(10)
        assert policy.allows(two_pairs, 3, 4)

    def test_minimum_validation(self):
        with pytest.raises(ValueError):
            MinClusterCount(0)


class TestComposite:
    def test_requires_all_policies(self, two_pairs):
        policy = CompositeConstraint([MaxClusterSize(10), MinClusterCount(3)])
        assert not policy.allows(two_pairs, 1, 3)  # MinClusterCount vetoes
        assert policy.allows(two_pairs, 1, 2)

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositeConstraint([])

    def test_repr_lists_members(self):
        policy = CompositeConstraint([Unconstrained()])
        assert "Unconstrained()" in repr(policy)
