"""Integration tests: full stream → clusterer → metrics pipelines.

These exercise the exact paths the benchmarks use, at reduced scale, so
a green test suite implies the experiment harness can run.
"""

from repro.baselines import PeriodicRecomputeClusterer, louvain
from repro.core import (
    ClustererConfig,
    MaxClusterSize,
    ShardedClusterer,
    SlidingWindowClusterer,
    StreamingGraphClusterer,
)
from repro.datasets import load_dataset
from repro.graph import AdjacencyGraph, graph_from_events
from repro.quality import (
    average_conductance,
    modularity,
    nmi,
    pairwise_f1,
)
from repro.streams import (
    drifting_sbm_stream,
    insert_only_stream,
    lfr_graph,
    planted_partition,
    sbm_stream,
)


class TestQualityPipeline:
    def test_streaming_recovers_clear_sbm_structure(self):
        graph = planted_partition(300, 3, p_in=0.25, p_out=0.0005, seed=31)
        events = insert_only_stream(graph.edges, seed=31)
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=len(graph.edges) // 5, strict=False)
        )
        clusterer.process(events)
        snapshot = clusterer.snapshot().merged_small_clusters(min_size=3)
        assert nmi(snapshot, graph.truth) > 0.6

    def test_quality_improves_with_reservoir_size(self):
        graph = lfr_graph(600, mu=0.1, seed=32)
        events = insert_only_stream(graph.edges, seed=32)
        scores = []
        for fraction in (0.02, 0.5):
            clusterer = StreamingGraphClusterer(
                ClustererConfig(
                    reservoir_capacity=max(1, int(fraction * len(graph.edges))),
                    strict=False,
                    seed=1,
                )
            )
            clusterer.process(events)
            scores.append(pairwise_f1(clusterer.snapshot(), graph.truth))
        assert scores[1] > scores[0]

    def test_streaming_vs_offline_on_dataset(self):
        # The paper's recipe on a realistic graph: reservoir + a
        # cluster-size bound near the true maximum community size.
        dataset = load_dataset("amazon_like")
        events = insert_only_stream(dataset.edges, seed=33)
        clusterer = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=len(dataset.edges) // 3,
                constraint=MaxClusterSize(120),
                strict=False,
            )
        )
        clusterer.process(events)
        graph = AdjacencyGraph(dataset.edges)
        streaming_quality = nmi(clusterer.snapshot(), dataset.truth)
        offline_quality = nmi(louvain(graph, seed=1), dataset.truth)
        assert streaming_quality > 0.6
        assert offline_quality > streaming_quality * 0.5  # sanity on the baseline

    def test_unconstrained_oversampling_collapses(self):
        """Documents *why* the constraints exist: at high sampling rates
        on a mixed graph the sampled components merge into one giant
        cluster, and the size bound prevents exactly that."""
        dataset = load_dataset("email_like")
        events = insert_only_stream(dataset.edges, seed=33)
        free = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=len(dataset.edges) // 3, strict=False)
        ).process(events)
        bounded = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=len(dataset.edges) // 3,
                constraint=MaxClusterSize(150),
                strict=False,
            )
        ).process(events)
        assert free.snapshot().max_cluster_size > 900  # giant component
        assert bounded.snapshot().max_cluster_size <= 150
        assert nmi(bounded.snapshot(), dataset.truth) > nmi(
            free.snapshot(), dataset.truth
        )

    def test_metrics_on_streaming_snapshot(self):
        events, truth = sbm_stream(200, 4, 0.3, 0.002, seed=34)
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=150, strict=False)
        ).process(events)
        graph = graph_from_events(events)
        snapshot = clusterer.snapshot()
        assert modularity(graph, snapshot) > 0.2
        # Conductance over all tiny fragments is high; the *large*
        # clusters (the recovered communities) must be well separated.
        assert 0 <= average_conductance(graph, snapshot, min_size=20) < 0.5


class TestThroughputPipeline:
    def test_streaming_is_much_faster_than_periodic_louvain(self):
        # The gap opens with graph size: the recompute baseline pays
        # O(m) per interval while streaming pays O(polylog) per event.
        from repro.bench import measure_throughput

        graph = planted_partition(2000, 4, p_in=0.02, p_out=0.0005, seed=35)
        events = insert_only_stream(graph.edges, seed=35)
        streaming = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=1000, strict=False)
        )
        offline = PeriodicRecomputeClusterer(louvain, interval=1000)
        fast = measure_throughput(streaming, events)
        slow = measure_throughput(offline, events)
        assert fast.events_per_second > 3 * slow.events_per_second


class TestChurnPipeline:
    def test_window_tracks_drift(self):
        phases = drifting_sbm_stream(
            100, 4, 0.35, 0.002, num_phases=3, migrate_fraction=0.3, seed=36
        )
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=600, strict=False)
        )
        scores = []
        for phase in phases:
            clusterer.process(phase.events)
            snapshot = clusterer.snapshot().merged_small_clusters(min_size=3)
            scores.append(pairwise_f1(snapshot, phase.truth))
        # Quality should hold up (not collapse) as communities drift.
        assert all(score > 0.35 for score in scores)

    def test_sliding_window_end_to_end(self):
        events, _ = sbm_stream(150, 3, 0.3, 0.01, seed=37)
        window = SlidingWindowClusterer(
            ClustererConfig(reservoir_capacity=300), window=400
        )
        window.process(events)
        assert window.inner.stats.edge_deletes > 0  # expiry really ran
        assert window.num_live_edges <= 400


class TestShardedPipeline:
    def test_sharded_quality_comparable_to_single(self):
        graph = planted_partition(240, 4, p_in=0.3, p_out=0.001, seed=38)
        events = insert_only_stream(graph.edges, seed=38)
        single = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=800, strict=False)
        ).process(events)
        sharded = ShardedClusterer(
            ClustererConfig(reservoir_capacity=800, strict=False), num_shards=4
        ).process(events)
        single_score = pairwise_f1(single.snapshot(), graph.truth)
        sharded_score = pairwise_f1(sharded.snapshot(), graph.truth)
        assert sharded_score > 0.5 * single_score

    def test_constraint_respected_per_shard_and_at_merge(self):
        """Shards enforce constraints locally, and the merge re-enforces
        them: the union of innocent shard-local clusters must not exceed
        the global bound either."""
        graph = planted_partition(100, 1, p_in=0.3, p_out=0.0, seed=39)
        sharded = ShardedClusterer(
            ClustererConfig(
                reservoir_capacity=400,
                constraint=MaxClusterSize(10),
                strict=False,
            ),
            num_shards=2,
        ).process(insert_only_stream(graph.edges, seed=39))
        for shard in sharded.shards:
            assert shard.snapshot().max_cluster_size <= 10
        assert sharded.snapshot().max_cluster_size <= 10
