"""Unit tests for the dynamic adjacency graph."""

import pytest

from repro.graph import AdjacencyGraph


class TestMutation:
    def test_add_edge_creates_endpoints(self):
        g = AdjacencyGraph()
        assert g.add_edge(1, 2)
        assert g.num_vertices == 2
        assert g.num_edges == 1

    def test_duplicate_add_is_rejected(self):
        g = AdjacencyGraph()
        g.add_edge(1, 2)
        assert not g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = AdjacencyGraph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_remove_edge(self):
        g = AdjacencyGraph([(1, 2), (2, 3)])
        assert g.remove_edge(2, 1)
        assert not g.remove_edge(1, 2)
        assert g.num_edges == 1
        assert g.has_vertex(1)  # endpoints survive edge removal

    def test_remove_vertex_returns_incident_edges(self):
        g = AdjacencyGraph([(1, 2), (1, 3), (2, 3)])
        removed = g.remove_vertex(1)
        assert sorted(removed) == [(1, 2), (1, 3)]
        assert g.num_edges == 1
        assert not g.has_vertex(1)

    def test_remove_absent_vertex_is_noop(self):
        g = AdjacencyGraph([(1, 2)])
        assert g.remove_vertex(99) == []

    def test_add_vertex_isolated(self):
        g = AdjacencyGraph()
        assert g.add_vertex(5)
        assert not g.add_vertex(5)
        assert g.degree(5) == 0

    def test_clear(self):
        g = AdjacencyGraph([(1, 2), (3, 4)])
        g.clear()
        assert g.num_vertices == 0 and g.num_edges == 0


class TestQueries:
    def test_degree_and_neighbors(self):
        g = AdjacencyGraph([(1, 2), (1, 3)])
        assert g.degree(1) == 2
        assert g.neighbors(1) == {2, 3}
        assert set(g.iter_neighbors(2)) == {1}

    def test_degree_unknown_vertex_raises(self):
        g = AdjacencyGraph()
        with pytest.raises(KeyError):
            g.degree(1)

    def test_edges_yields_each_once_canonical(self):
        edges = [(1, 2), (2, 3), (1, 3)]
        g = AdjacencyGraph(edges)
        assert sorted(g.edges()) == sorted(edges)

    def test_has_edge(self):
        g = AdjacencyGraph([(1, 2)])
        assert g.has_edge(2, 1)
        assert not g.has_edge(1, 3)
        assert not g.has_edge(1, 1)

    def test_contains(self):
        g = AdjacencyGraph([(1, 2)])
        assert 1 in g and 3 not in g

    def test_subgraph_edges(self):
        g = AdjacencyGraph([(1, 2), (2, 3), (3, 4)])
        assert sorted(g.subgraph_edges({1, 2, 3})) == [(1, 2), (2, 3)]

    def test_connected_components(self):
        g = AdjacencyGraph([(1, 2), (3, 4)])
        g.add_vertex(5)
        components = sorted(map(sorted, g.connected_components()))
        assert components == [[1, 2], [3, 4], [5]]

    def test_copy_is_independent(self):
        g = AdjacencyGraph([(1, 2)])
        clone = g.copy()
        clone.add_edge(2, 3)
        assert g.num_edges == 1
        assert clone.num_edges == 2

    def test_repr(self):
        assert "num_vertices=2" in repr(AdjacencyGraph([(1, 2)]))
