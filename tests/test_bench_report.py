"""Unit tests for the consolidated experiment report."""

import pytest

from repro.bench import ExperimentResult, save_results
from repro.bench.report import (
    consolidated_report,
    discover_experiments,
    headline_summary,
    main,
)


@pytest.fixture
def results_dir(tmp_path):
    e4 = ExperimentResult("e4_throughput", "throughput", metadata={"headline_gap": 40235.2})
    e4.add_row(algorithm="streaming", events_per_sec=26555)
    save_results(e4, tmp_path)
    e7 = ExperimentResult("e7_parallel", "sharding")
    e7.add_row(shards=1, speedup_on_w_cores=1.0)
    e7.add_row(shards=8, speedup_on_w_cores=7.83)
    save_results(e7, tmp_path)
    e8 = ExperimentResult("e8_constraints", "constraints")
    e8.add_row(constraint="unconstrained", nmi=0.28)
    e8.add_row(constraint="MaxClusterSize(30)", nmi=0.83)
    save_results(e8, tmp_path)
    return tmp_path


class TestDiscovery:
    def test_lists_records_sorted(self, results_dir):
        assert discover_experiments(results_dir) == [
            "e4_throughput", "e7_parallel", "e8_constraints",
        ]

    def test_missing_directory(self, tmp_path):
        assert discover_experiments(tmp_path / "nope") == []


class TestReport:
    def test_contains_all_sections(self, results_dir):
        report = consolidated_report(results_dir)
        assert "e4_throughput: throughput" in report
        assert "e7_parallel" in report
        assert "metadata: headline_gap=40235.2" in report

    def test_empty_directory_message(self, tmp_path):
        assert "no experiment records" in consolidated_report(tmp_path)

    def test_main_prints(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "headlines:" in out
        assert "throughput_gap=40235" in out


class TestHeadlines:
    def test_extracts_all_available(self, results_dir):
        summary = headline_summary(results_dir)
        assert summary["throughput_gap"] == 40235
        assert summary["streaming_events_per_sec"] == 26555
        assert summary["shard_balance_8"] == 7.83
        assert summary["best_constrained_nmi"] == 0.83

    def test_partial_results(self, tmp_path):
        e7 = ExperimentResult("e7_parallel", "sharding")
        e7.add_row(shards=8, speedup_on_w_cores=7.5)
        save_results(e7, tmp_path)
        summary = headline_summary(tmp_path)
        assert summary == {"shard_balance_8": 7.5}

    def test_no_results(self, tmp_path):
        assert headline_summary(tmp_path) == {}
