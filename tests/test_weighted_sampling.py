"""Unit and statistical tests for weighted reservoir sampling."""

from collections import Counter

import pytest

from repro.sampling import WeightedReservoir


class TestBasics:
    def test_fills_to_capacity(self):
        wr = WeightedReservoir(3, seed=0)
        for i in range(10):
            wr.offer(i, 1.0)
        assert len(wr) == 3
        assert wr.stream_size == 10
        assert wr.total_weight == pytest.approx(10.0)

    def test_small_stream_keeps_everything(self):
        wr = WeightedReservoir(5, seed=0)
        for i in range(3):
            assert wr.offer(i, 2.0) is True
        assert sorted(wr.items()) == [0, 1, 2]

    def test_weight_validation(self):
        wr = WeightedReservoir(2, seed=0)
        with pytest.raises(ValueError):
            wr.offer("x", 0.0)
        with pytest.raises(ValueError):
            wr.offer("x", -1.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WeightedReservoir(0)

    def test_overwhelming_weights_always_win(self):
        wr = WeightedReservoir(2, seed=1)
        wr.offer("a", 1e-9)
        wr.offer("b", 1e-9)
        wr.offer("heavy1", 1e9)
        wr.offer("heavy2", 1e9)
        assert set(wr.items()) == {"heavy1", "heavy2"}

    def test_threshold_monotone(self):
        wr = WeightedReservoir(2, seed=2)
        thresholds = []
        for i in range(50):
            wr.offer(i, 1.0)
            thresholds.append(wr.threshold())
        assert all(b >= a for a, b in zip(thresholds[2:], thresholds[3:]))

    def test_keys_are_valid_probabilities(self):
        wr = WeightedReservoir(4, seed=3)
        for i in range(30):
            wr.offer(i, float(i + 1))
        for _, key in wr.items_with_keys():
            assert 0.0 < key <= 1.0


class TestDistribution:
    @pytest.mark.parametrize("use_jumps", [True, False])
    def test_inclusion_proportional_to_weight_k1(self, use_jumps):
        # k=1: P(item) = w_i / W exactly.
        weights = {"a": 1.0, "b": 2.0, "c": 5.0}
        counts = Counter()
        runs = 6000
        for seed in range(runs):
            wr = WeightedReservoir(1, seed=seed, use_jumps=use_jumps)
            for item, weight in weights.items():
                wr.offer(item, weight)
            counts[wr.items()[0]] += 1
        total = sum(weights.values())
        for item, weight in weights.items():
            expected = runs * weight / total
            assert abs(counts[item] - expected) < 5 * (expected**0.5), item

    def test_uniform_weights_reduce_to_uniform_sampling(self):
        counts = Counter()
        runs = 4000
        for seed in range(runs):
            wr = WeightedReservoir(5, seed=seed)
            for i in range(20):
                wr.offer(i, 7.0)
            counts.update(wr.items())
        expected = runs * 5 / 20
        for i in range(20):
            assert abs(counts[i] - expected) < 5 * (expected**0.5)

    def test_jump_and_nojump_agree_statistically(self):
        # Same inclusion frequencies under A-ExpJ and plain A-Res.
        def frequencies(use_jumps):
            counts = Counter()
            for seed in range(3000):
                wr = WeightedReservoir(2, seed=seed, use_jumps=use_jumps)
                for i in range(10):
                    wr.offer(i, float(1 + (i % 3)))
                counts.update(wr.items())
            return counts

        jump = frequencies(True)
        plain = frequencies(False)
        for i in range(10):
            assert abs(jump[i] - plain[i]) < 5 * (max(jump[i], plain[i]) ** 0.5)
