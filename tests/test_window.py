"""Unit tests for SlidingWindowClusterer."""

import pytest

from repro.core import ClustererConfig, SlidingWindowClusterer, StreamingGraphClusterer
from repro.errors import UnsupportedOperationError
from repro.streams import add_edge, add_vertex, delete_edge


def make(window=5, capacity=100) -> SlidingWindowClusterer:
    return SlidingWindowClusterer(
        ClustererConfig(reservoir_capacity=capacity), window=window
    )


class TestWindowSemantics:
    def test_edges_expire(self):
        w = make(window=3)
        w.apply(add_edge(1, 2))
        w.apply(add_edge(3, 4))
        w.apply(add_edge(5, 6))
        assert w.same_cluster(1, 2)
        w.apply(add_edge(7, 8))  # pushes (1, 2) out
        assert not w.same_cluster(1, 2)
        assert w.num_live_edges == 3

    def test_reoccurrence_refreshes(self):
        w = make(window=3)
        w.apply(add_edge(1, 2))
        w.apply(add_edge(3, 4))
        w.apply(add_edge(1, 2))  # second copy
        w.apply(add_edge(5, 6))  # expires the *first* copy only
        assert w.same_cluster(1, 2)
        w.apply(add_edge(7, 8))
        w.apply(add_edge(9, 10))  # now the second copy expires too
        assert not w.same_cluster(1, 2)

    def test_window_fill_bounded(self):
        w = make(window=4)
        for i in range(20):
            w.apply(add_edge(i, i + 1))
        assert w.window_fill == 4
        assert w.num_live_edges == 4

    def test_vertex_adds_pass_through(self):
        w = make()
        w.apply(add_vertex(99))
        assert 99 in w.snapshot()

    def test_deletions_rejected(self):
        w = make()
        w.apply(add_edge(1, 2))
        with pytest.raises(UnsupportedOperationError):
            w.apply(delete_edge(1, 2))

    def test_window_validation(self):
        with pytest.raises(ValueError):
            make(window=0)

    def test_process_and_repr(self):
        w = make(window=2).process([add_edge(1, 2), add_edge(3, 4)])
        assert "fill=2" in repr(w)
        assert w.num_clusters >= 2

    def test_cluster_members_delegates(self):
        w = make(window=10)
        w.apply(add_edge(1, 2))
        assert w.cluster_members(1) == {1, 2}


class TestEquivalenceWithExplicitDeletes:
    def test_matches_manual_add_delete_stream(self):
        """The windowed clusterer must equal a plain clusterer fed the
        expanded add/delete stream (same config/seed => same sampling)."""
        window = 6
        edges = [(i % 9, (i + 1) % 9 + 10) for i in range(40)]
        w = SlidingWindowClusterer(
            ClustererConfig(reservoir_capacity=50, seed=3), window=window
        )
        manual = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=50, seed=3))
        from collections import Counter, deque

        recent: deque = deque()
        multiplicity: Counter = Counter()
        for u, v in edges:
            w.apply(add_edge(u, v))
            edge = (min(u, v), max(u, v))
            recent.append(edge)
            multiplicity[edge] += 1
            if multiplicity[edge] == 1:
                manual.apply(add_edge(*edge))
            while len(recent) > window:
                expired = recent.popleft()
                multiplicity[expired] -= 1
                if multiplicity[expired] == 0:
                    del multiplicity[expired]
                    manual.apply(delete_edge(*expired))
            assert w.snapshot() == manual.snapshot()
