"""Unit tests for the LFR-style generator."""

import random

import pytest

from repro.streams import lfr_graph, power_law_sequence


class TestPowerLawSequence:
    def test_respects_bounds(self):
        rng = random.Random(0)
        values = power_law_sequence(500, 2.5, 3, 40, rng)
        assert len(values) == 500
        assert min(values) >= 3
        assert max(values) <= 40

    def test_heavier_tail_for_smaller_exponent(self):
        rng_a, rng_b = random.Random(1), random.Random(1)
        flat = power_law_sequence(3000, 1.2, 1, 100, rng_a)
        steep = power_law_sequence(3000, 3.5, 1, 100, rng_b)
        assert sum(flat) / len(flat) > sum(steep) / len(steep)

    def test_degenerate_support(self):
        rng = random.Random(2)
        assert power_law_sequence(10, 2.0, 5, 5, rng) == [5] * 10

    def test_validation(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            power_law_sequence(10, 2.0, 5, 3, rng)
        with pytest.raises(ValueError):
            power_law_sequence(0, 2.0, 1, 5, rng)


class TestLFRGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return lfr_graph(800, mu=0.15, seed=42)

    def test_covers_all_vertices(self, graph):
        assert graph.truth.num_vertices == 800

    def test_no_duplicates_or_loops(self, graph):
        assert len(set(graph.edges)) == len(graph.edges)
        assert all(u != v for u, v in graph.edges)

    def test_realized_mixing_near_target(self, graph):
        intra = sum(1 for u, v in graph.edges if graph.truth.same_cluster(u, v))
        realized = 1 - intra / graph.num_edges
        assert abs(realized - 0.15) < 0.05

    def test_community_size_bounds(self):
        graph = lfr_graph(600, mu=0.1, min_community=20, max_community=80, seed=7)
        sizes = graph.truth.sizes()
        assert max(sizes) <= 80 + 20  # tail fold-in may exceed slightly
        assert min(sizes) >= 10  # fold-in keeps communities non-trivial

    def test_degree_heterogeneity(self, graph):
        degrees = sorted(graph.degrees.values())
        assert degrees[-1] > 3 * degrees[len(degrees) // 2]

    def test_determinism(self):
        a = lfr_graph(300, mu=0.2, seed=5)
        b = lfr_graph(300, mu=0.2, seed=5)
        assert a.edges == b.edges
        assert a.truth == b.truth

    def test_mu_zero_has_no_inter_edges(self):
        graph = lfr_graph(300, mu=0.0, seed=6)
        assert all(graph.truth.same_cluster(u, v) for u, v in graph.edges)

    def test_validation(self):
        with pytest.raises(ValueError):
            lfr_graph(100, mu=1.5)
        with pytest.raises(ValueError):
            lfr_graph(0)
