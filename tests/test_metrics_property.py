"""Property-based tests for the quality metrics' mathematical invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import AdjacencyGraph
from repro.quality import (
    Partition,
    ari,
    average_conductance,
    coverage,
    modularity,
    nmi,
    normalized_vi,
    pairwise_precision_recall_f1,
    split_join_distance,
    variation_of_information,
)

# Random partitions over 1..n as label lists.
_labelings = st.lists(st.integers(0, 5), min_size=2, max_size=40)


def _partition(labels) -> Partition:
    return Partition({i: label for i, label in enumerate(labels)})


def _permuted(labels, offset: int) -> Partition:
    return Partition({i: (label + offset) * 7 for i, label in enumerate(labels)})


@settings(max_examples=120, deadline=None)
@given(labels=_labelings, offset=st.integers(1, 5))
def test_external_metrics_are_label_invariant(labels, offset):
    a = _partition(labels)
    b = _permuted(labels, offset)
    assert abs(nmi(a, b) - 1.0) < 1e-9
    assert abs(ari(a, b) - 1.0) < 1e-9
    assert abs(variation_of_information(a, b)) < 1e-9
    assert split_join_distance(a, b) == 0


@settings(max_examples=120, deadline=None)
@given(left=_labelings, right=_labelings)
def test_metric_bounds_and_symmetry(left, right):
    n = min(len(left), len(right))
    a = _partition(left[:n])
    b = _partition(right[:n])
    assert 0.0 <= nmi(a, b) <= 1.0 + 1e-9
    assert ari(a, b) <= 1.0 + 1e-9
    precision, recall, f1 = pairwise_precision_recall_f1(a, b)
    assert 0.0 <= precision <= 1.0 and 0.0 <= recall <= 1.0 and 0.0 <= f1 <= 1.0
    vi = variation_of_information(a, b)
    assert -1e-9 <= vi <= math.log(max(n, 2)) * 2 + 1e-9
    assert vi == variation_of_information(b, a)
    assert 0.0 <= normalized_vi(a, b) <= 1.0 + 1e-9
    sj = split_join_distance(a, b)
    assert 0 <= sj <= 2 * n
    assert sj == split_join_distance(b, a)


@settings(max_examples=100, deadline=None)
@given(labels=_labelings, third=_labelings)
def test_vi_triangle_inequality(labels, third):
    n = min(len(labels), len(third))
    a = _partition(labels[:n])
    b = _partition(third[:n])
    c = _partition([(x + y) % 3 for x, y in zip(labels[:n], third[:n])])
    ab = variation_of_information(a, b)
    ac = variation_of_information(a, c)
    cb = variation_of_information(c, b)
    assert ab <= ac + cb + 1e-9


# Random small graphs as edge sets over 0..9.
_edge_sets = st.sets(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=30,
)


@settings(max_examples=120, deadline=None)
@given(edges=_edge_sets, labels=st.lists(st.integers(0, 3), min_size=10, max_size=10))
def test_modularity_and_coverage_bounds(edges, labels):
    graph = AdjacencyGraph(edges)
    partition = Partition({v: labels[v] for v in range(10)})
    q = modularity(graph, partition)
    assert -0.5 - 1e-9 <= q <= 1.0
    assert 0.0 <= coverage(graph, partition) <= 1.0
    assert 0.0 <= average_conductance(graph, partition) <= 1.0 + 1e-9


@settings(max_examples=80, deadline=None)
@given(edges=_edge_sets)
def test_trivial_partitions_modularity(edges):
    graph = AdjacencyGraph(edges)
    whole = Partition({v: 0 for v in graph.vertices()})
    # One cluster holding everything always has Q = 0 exactly:
    # coverage 1 and (Σd/2m)² = 1.
    assert modularity(graph, whole) == 0.0 or abs(modularity(graph, whole)) < 1e-12
    singles = Partition.singletons(graph.vertices())
    assert modularity(graph, singles) <= 0.0 + 1e-12
