"""Dense-id hot path: interning, delta codec, and format compatibility.

Covers the PR-5 contracts end to end:

* :class:`VertexInterner` determinism and state round-trips,
* the stateful delta codec (``FrameEncoder``/``FrameDecoder``) —
  round-trip exactness, per-connection tables, decode-time interning in
  sequential order, error rollback — including non-ASCII and
  out-of-64-bit-range integer labels,
* version-1 (pre-intern) clusterer checkpoints loading into the
  format-2 clusterer,
* pipeline and sequential sharded execution resuming *each other's*
  checkpoint files,
* ``AdjacencyGraph.neighbors`` returning a read-only view, and
* ``__slots__`` on the hot per-event classes staying picklable.
"""

import pickle

import pytest

from repro.core import (
    ClustererConfig,
    PipelineClusterer,
    ShardedClusterer,
    StreamingGraphClusterer,
)
from repro.core.clusterer import STATE_FORMAT
from repro.graph import AdjacencyGraph, MAX_VERTEX_ID, VertexInterner
from repro.persist import load_checkpoint, save_checkpoint
from repro.sampling.random_pairing import (
    InsertProposal,
    PackedEdgeReservoir,
    RandomPairingReservoir,
)
from repro.streams import insert_delete_stream, planted_partition
from repro.streams.codec import DELTA_CODEC_VERSION, FrameDecoder, FrameEncoder
from repro.streams.events import EdgeEvent, EventKind

ADD = EventKind.ADD_EDGE
DEL = EventKind.DELETE_EDGE
ADDV = EventKind.ADD_VERTEX
DELV = EventKind.DELETE_VERTEX

#: Labels exercising every wire-entry tag: utf-8 strings (non-ASCII),
#: in-range ints, negative ints, and ints outside the signed 64-bit
#: range (decimal-digit entries).
EXOTIC_LABELS = ["café", "日本語-頂点", -17, 0, (1 << 80) + 3, -(1 << 90), "plain"]


def exotic_stream():
    """A small edge/vertex stream over the exotic labels."""
    a, b, c, d, e, f, g = EXOTIC_LABELS
    return [
        (ADD, a, b),
        (ADD, b, c),
        (ADDV, d, None),
        (ADD, c, d),
        (ADD, d, e),
        (DEL, b, c),
        (ADD, e, f),
        (ADD, f, g),
        (ADD, a, g),
        (DELV, e, None),
        (ADD, a, c),
    ]


class TestVertexInterner:
    def test_dense_first_appearance_ids(self):
        interner = VertexInterner()
        assert [interner.intern(x) for x in ("b", "a", "b", "c")] == [0, 1, 0, 2]
        assert interner.labels() == ["b", "a", "c"]
        assert len(interner) == 3
        assert "a" in interner and "z" not in interner

    def test_lookup_contracts(self):
        interner = VertexInterner(["x", 42])
        assert interner.id_of("x") == 0
        assert interner.id_of("missing") is None
        assert interner.label_of(1) == 42
        with pytest.raises(IndexError):
            interner.label_of(7)

    def test_state_roundtrip_preserves_order(self):
        interner = VertexInterner(EXOTIC_LABELS)
        restored = VertexInterner.from_state(interner.get_state())
        assert restored.labels() == interner.labels()
        for label in EXOTIC_LABELS:
            assert restored.id_of(label) == interner.id_of(label)

    def test_duplicate_state_rejected(self):
        with pytest.raises(ValueError, match="duplicate label"):
            VertexInterner.from_state({"labels": ["a", "b", "a"]})

    def test_max_id_is_packable(self):
        # Two ids must pack into one 64-bit edge key.
        assert (MAX_VERTEX_ID << 32) | MAX_VERTEX_ID < (1 << 64)


def rehydrate(segments, interner):
    """Label-space events from decoder segments (for comparisons)."""
    events = []
    for segment in segments:
        if isinstance(segment, list):
            for kind, uid, vid in segment:
                events.append(
                    (kind, interner.label_of(uid), interner.label_of(vid))
                )
        else:
            events.append(segment)
    return events


class TestDeltaCodec:
    def test_roundtrip_with_exotic_labels(self):
        encoder = FrameEncoder()
        interner = VertexInterner()
        decoder = FrameDecoder(interner)
        stream = exotic_stream()
        frame = encoder.encode_batch(stream)
        assert frame[0] == DELTA_CODEC_VERSION
        decoded = rehydrate(decoder.decode(frame), interner)
        # Edge events come back in label-canonical orientation.
        expected = [
            (k, u, v) if v is None else (k,) + EdgeEvent(k, u, v).edge
            for (k, u, v) in stream
        ]
        assert decoded == expected

    def test_second_frame_ships_no_repeated_entries(self):
        encoder = FrameEncoder()
        decoder = FrameDecoder(VertexInterner())
        first = encoder.encode_batch([(ADD, "alpha", "beta")])
        table_after_first = encoder.table_size
        second = encoder.encode_batch([(DEL, "alpha", "beta")])
        assert encoder.table_size == table_after_first  # nothing new
        assert len(second) < len(first)  # no label bytes on the wire
        decoder.decode(first)
        segments = decoder.decode(second)
        assert decoder.table_size == encoder.table_size
        assert len(segments) == 1 and len(segments[0]) == 1

    def test_primed_tables_resync(self):
        base = ["u", "v", 12]
        encoder = FrameEncoder(base)
        interner = VertexInterner()
        decoder = FrameDecoder(interner, base)
        frame = encoder.encode_batch([(ADD, "u", "w"), (ADD, 12, "v")])
        decoded = rehydrate(decoder.decode(frame), interner)
        # Edge events come back label-canonical (repr order across types).
        assert decoded == [(ADD, "u", "w"), (ADD,) + EdgeEvent(ADD, 12, "v").edge]

    def test_encoder_rolls_back_on_unsupported_label(self):
        encoder = FrameEncoder()
        encoder.encode_batch([(ADD, "a", "b")])
        before = encoder.table()
        with pytest.raises(TypeError, match="int and str"):
            encoder.encode_batch([(ADD, "a", "c"), (ADD, ("t", 1), "d")])
        assert encoder.table() == before  # staged entries rolled back
        # The encoder is still usable and in sync with a fresh decoder.
        interner = VertexInterner()
        decoder = FrameDecoder(interner, before)
        frame = encoder.encode_batch([(ADD, "a", "c")])
        assert rehydrate(decoder.decode(frame), interner) == [(ADD, "a", "c")]

    def test_encode_batches_split_roundtrip(self):
        encoder = FrameEncoder()
        interner = VertexInterner()
        decoder = FrameDecoder(interner)
        stream = [(ADD, f"vertex-{i}", f"vertex-{i + 1}") for i in range(200)]
        frames = list(encoder.encode_batches(stream, max_bytes=512))
        assert len(frames) > 1
        assert all(len(frame) <= 512 for frame in frames)
        decoded = []
        for frame in frames:
            decoded.extend(rehydrate(decoder.decode(frame), interner))
        assert decoded == [(k,) + EdgeEvent(k, u, v).edge for k, u, v in stream]

    def test_self_loop_stays_label_space(self):
        encoder = FrameEncoder()
        interner = VertexInterner()
        decoder = FrameDecoder(interner)
        segments = decoder.decode(
            encoder.encode_batch([(ADD, "a", "b"), (ADD, "x", "x")])
        )
        assert isinstance(segments[0], list)
        assert segments[1] == (ADD, "x", "x")
        assert "x" not in interner  # never interned

    def test_decode_time_interning_matches_inline_order(self):
        config = ClustererConfig(reservoir_capacity=8, seed=3, strict=False)
        inline = StreamingGraphClusterer(config)
        inline.apply_many(exotic_stream())

        worker = StreamingGraphClusterer(config)
        encoder = FrameEncoder()
        decoder = FrameDecoder(worker.interner)
        for segment in decoder.decode(encoder.encode_batch(exotic_stream())):
            if isinstance(segment, list):
                worker.apply_interned_many(segment)
            else:
                worker.apply_many((segment,))
        assert worker.interner.labels() == inline.interner.labels()
        assert worker.get_state() == inline.get_state()

    def test_rejects_stateless_v1_frames(self):
        from repro.streams.codec import encode_batch

        decoder = FrameDecoder(VertexInterner())
        with pytest.raises(ValueError, match="delta codec version"):
            decoder.decode(encode_batch([(ADD, "a", "b")]))


def churn_events():
    graph = planted_partition(60, 3, p_in=0.35, p_out=0.03, seed=11)
    return list(insert_delete_stream(graph.edges, churn=0.35, seed=11))


class TestStateFormatCompat:
    def test_state_carries_format_and_intern_table(self):
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=40, seed=5, strict=False)
        )
        clusterer.apply_many(churn_events())
        state = clusterer.get_state()
        assert state["format"] == STATE_FORMAT == 2
        assert set(state["intern"]) >= set(state["conn_vertices"])

    def test_v1_checkpoint_loads_into_new_clusterer(self):
        events = churn_events()
        half = len(events) // 2
        original = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=40, seed=5, strict=False)
        )
        original.apply_many(events[:half])
        state = original.get_state()
        # A version-1 state is the same label-space payload without the
        # format marker or the intern table.
        v1_state = {
            key: value
            for key, value in state.items()
            if key not in ("format", "intern")
        }
        restored = StreamingGraphClusterer.from_state(v1_state)
        assert restored.snapshot() == original.snapshot()
        assert sorted(restored.reservoir_edges()) == sorted(
            original.reservoir_edges()
        )
        # The tail replays to the identical end state either way.
        original.apply_many(events[half:])
        restored.apply_many(events[half:])
        assert restored.snapshot() == original.snapshot()
        assert restored.get_state() == original.get_state()

    def test_format2_roundtrip_identity(self):
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=40, seed=5, strict=False)
        )
        clusterer.apply_many(churn_events())
        restored = StreamingGraphClusterer.from_state(clusterer.get_state())
        assert restored.get_state() == clusterer.get_state()


class TestPipelineInlineCheckpointExchange:
    CONFIG = ClustererConfig(reservoir_capacity=48, seed=13, strict=False)

    @staticmethod
    def exotic_churn():
        events = churn_events()
        # Remap a slice of the integer labels onto exotic ones so the
        # checkpoint files carry non-ASCII and >64-bit labels.
        exotic = {
            i: label for i, label in enumerate(EXOTIC_LABELS) if label != i
        }
        remap = lambda x: exotic.get(x, x)  # noqa: E731
        return [
            (e.kind, remap(e.u), None if e.v is None else remap(e.v))
            for e in events
        ]

    def test_pipeline_resumes_inline_file_and_back(self, tmp_path):
        events = self.exotic_churn()
        half = len(events) // 2
        shards = 2

        sequential = ShardedClusterer(self.CONFIG, num_shards=shards)
        sequential.apply_many(events[:half])
        inline_file = tmp_path / "inline.ckpt"
        save_checkpoint(sequential, inline_file, position=half)

        # Pipeline resumes the sequential file…
        checkpoint = load_checkpoint(inline_file)
        with PipelineClusterer.from_state(
            checkpoint.clusterer.get_state(), batch_events=7
        ) as pipeline:
            pipeline.apply_many(checkpoint.remaining(events))
            merged_pipeline = pipeline.snapshot()
            pipeline_file = tmp_path / "pipeline.ckpt"
            save_checkpoint(pipeline, pipeline_file, position=len(events))

        sequential.apply_many(events[half:])
        assert merged_pipeline == sequential.snapshot()

        # …and sequential execution resumes the pipeline's file.
        resumed = load_checkpoint(pipeline_file).clusterer
        assert isinstance(resumed, ShardedClusterer)
        assert resumed.snapshot() == sequential.snapshot()
        # Byte-identical files after the same logical stream.
        reference = tmp_path / "reference.ckpt"
        save_checkpoint(sequential, reference, position=len(events))
        assert reference.read_bytes() == pipeline_file.read_bytes()


class TestNeighborsReadOnly:
    def test_id_mode_neighbors_is_immutable_view(self):
        graph = AdjacencyGraph(interner=VertexInterner())
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        view = graph.neighbors("a")
        assert isinstance(view, frozenset)
        assert view == {"b", "c"}
        with pytest.raises(AttributeError):
            view.add("z")
        # The view is a snapshot: later mutations don't leak in.
        graph.add_edge("a", "d")
        assert view == {"b", "c"}
        assert graph.neighbors("a") == {"b", "c", "d"}

    def test_label_mode_neighbors_is_immutable_view(self):
        graph = AdjacencyGraph([("x", "y")])
        view = graph.neighbors("x")
        assert isinstance(view, frozenset)
        with pytest.raises(AttributeError):
            view.discard("y")
        graph.remove_edge("x", "y")
        assert view == {"y"}  # snapshot unaffected
        assert graph.neighbors("x") == frozenset()


class TestHotClassSlots:
    def test_edge_event_has_no_dict_and_pickles(self):
        event = EdgeEvent(ADD, "b", "a")
        assert not hasattr(event, "__dict__")
        clone = pickle.loads(pickle.dumps(event))
        assert clone == event and clone.edge == ("a", "b")

    def test_insert_proposal_has_no_dict_and_pickles(self):
        proposal = InsertProposal(("a", "b"), admit=True, evicted=("c", "d"))
        assert not hasattr(proposal, "__dict__")
        assert pickle.loads(pickle.dumps(proposal)) == proposal

    def test_reservoir_has_no_dict_and_state_pickles(self):
        reservoir = RandomPairingReservoir(4, seed=2)
        for item in range(10):
            reservoir.insert_fast(item)
        assert not hasattr(reservoir, "__dict__")
        state = pickle.loads(pickle.dumps(reservoir.get_state()))
        restored = RandomPairingReservoir.from_state(state)
        assert restored.items() == reservoir.items()

    def test_packed_reservoir_state_pickles_with_array_slots(self):
        reservoir = PackedEdgeReservoir(4, seed=2)
        for item in range(10):
            reservoir.insert_fast((item << 32) | (item + 1))
        state = pickle.loads(pickle.dumps(reservoir.get_state()))
        restored = PackedEdgeReservoir.from_state(state)
        assert restored.items() == reservoir.items()
        assert type(restored._slots).__name__ == "array"

    def test_clusterer_checkpoint_state_pickles(self):
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=16, seed=1, strict=False)
        )
        clusterer.apply_many(exotic_stream())
        state = pickle.loads(pickle.dumps(clusterer.get_state()))
        restored = StreamingGraphClusterer.from_state(state)
        assert restored.snapshot() == clusterer.snapshot()
