"""Unit tests for the Partition type."""

import pytest

from repro.quality import Partition


class TestConstruction:
    def test_from_labels(self):
        p = Partition({1: "a", 2: "a", 3: "b"})
        assert p.num_clusters == 2
        assert p.same_cluster(1, 2)
        assert not p.same_cluster(1, 3)

    def test_from_clusters(self):
        p = Partition.from_clusters([{1, 2}, {3}])
        assert p.num_vertices == 3
        assert p.members(p.label_of(1)) == {1, 2}

    def test_from_clusters_rejects_overlap(self):
        with pytest.raises(ValueError, match="multiple clusters"):
            Partition.from_clusters([{1, 2}, {2, 3}])

    def test_singletons(self):
        p = Partition.singletons([1, 2, 3])
        assert p.num_clusters == 3

    def test_empty(self):
        p = Partition({})
        assert p.num_clusters == 0
        assert p.max_cluster_size == 0
        assert p.sizes() == []


class TestQueries:
    def test_label_of_unknown_raises(self):
        with pytest.raises(KeyError):
            Partition({1: 0}).label_of(2)

    def test_get_with_default(self):
        p = Partition({1: 0})
        assert p.get(2, "missing") == "missing"

    def test_clusters_sorted_by_size(self):
        p = Partition.from_clusters([{1}, {2, 3, 4}, {5, 6}])
        sizes = [len(c) for c in p.clusters()]
        assert sizes == [3, 2, 1]

    def test_sizes_descending(self):
        p = Partition.from_clusters([{1}, {2, 3, 4}, {5, 6}])
        assert p.sizes() == [3, 2, 1]

    def test_contains_and_len(self):
        p = Partition({1: 0, 2: 0})
        assert 1 in p and 3 not in p
        assert len(p) == 2

    def test_structural_equality_ignores_label_names(self):
        a = Partition({1: "x", 2: "x", 3: "y"})
        b = Partition({1: 7, 2: 7, 3: 9})
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_different_grouping(self):
        assert Partition({1: 0, 2: 0}) != Partition({1: 0, 2: 1})

    def test_inequality_on_different_vertex_sets(self):
        assert Partition({1: 0}) != Partition({2: 0})


class TestTransformations:
    def test_normalized_labels_dense_by_size(self):
        p = Partition.from_clusters([{9}, {1, 2, 3}, {4, 5}]).normalized()
        assert p.label_of(1) == 0  # biggest cluster gets label 0
        assert p.label_of(4) == 1
        assert p.label_of(9) == 2

    def test_restricted_to(self):
        p = Partition({1: 0, 2: 0, 3: 1})
        r = p.restricted_to([1, 3, 99])
        assert set(r.vertices()) == {1, 3}

    def test_merged_small_clusters(self):
        p = Partition.from_clusters([{1, 2, 3}, {4}, {5}])
        merged = p.merged_small_clusters(min_size=2)
        assert merged.num_clusters == 2
        assert merged.same_cluster(4, 5)

    def test_repr(self):
        assert "num_clusters=1" in repr(Partition({1: 0}))
