"""Unit tests for the benchmark harness utilities."""

import pytest

from repro.bench import (
    ExperimentResult,
    ThroughputResult,
    format_value,
    load_results,
    measure_allocations,
    measure_throughput,
    render_series,
    render_table,
    repeat,
    save_results,
    sweep,
)
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.streams import add_edge


class TestTables:
    def test_render_table_alignment(self):
        rows = [{"name": "a", "value": 1.23456}, {"name": "bb", "value": 100000}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="x")

    def test_render_series(self):
        text = render_series("s", [1, 2], {"f1": [0.9, 0.95], "nmi": [0.8, 0.85]})
        assert "f1" in text and "nmi" in text
        assert len(text.splitlines()) == 4

    def test_format_value(self):
        assert format_value(0.5) == "0.500"
        assert format_value(12345.6) == "12,346"
        assert format_value(1e-6) == "1.00e-06"
        assert format_value(123456) == "123,456"
        assert format_value("plain") == "plain"
        assert format_value(0.0) == "0"
        assert format_value(True) == "True"


class TestHarness:
    def test_experiment_result_rows(self):
        result = ExperimentResult("e0", "demo")
        result.add_row(x=1, y=2)
        assert result.rows == [{"x": 1, "y": 2}]
        assert result.as_dict()["experiment"] == "e0"

    def test_save_and_load(self, tmp_path):
        result = ExperimentResult("e_test", "demo", metadata={"seed": 1})
        result.add_row(x=1)
        path = save_results(result, tmp_path)
        assert path.exists()
        loaded = load_results("e_test", tmp_path)
        assert loaded.rows == [{"x": 1}]
        assert loaded.metadata == {"seed": 1}

    def test_repeat_statistics(self):
        stats = repeat(lambda seed: float(seed), repetitions=3, seeds=[1, 2, 3])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["min"] == 1.0 and stats["max"] == 3.0
        assert stats["stdev"] == pytest.approx(1.0)

    def test_repeat_single(self):
        stats = repeat(lambda seed: 5.0, repetitions=1)
        assert stats["stdev"] == 0.0

    def test_repeat_validation(self):
        with pytest.raises(ValueError):
            repeat(lambda s: 0.0, repetitions=0)
        with pytest.raises(ValueError):
            repeat(lambda s: 0.0, repetitions=3, seeds=[1])

    def test_sweep(self):
        rows = sweep([1, 2, 3], lambda x: {"x": x, "sq": x * x})
        assert rows[2] == {"x": 3, "sq": 9}


class TestThroughput:
    def test_measures_clusterer(self):
        clusterer = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10))
        events = [add_edge(i, i + 1) for i in range(500)]
        result = measure_throughput(clusterer, events)
        assert result.events == 500
        assert result.events_per_second > 0
        assert result.microseconds_per_event > 0

    def test_zero_events(self):
        result = ThroughputResult(events=0, seconds=0.0)
        assert result.microseconds_per_event == 0.0


class TestMemory:
    def test_measures_retained_state(self):
        def build():
            return list(range(100000))

        data, measurement = measure_allocations(build)
        assert len(data) == 100000
        assert measurement.net_bytes > 100000  # a list of ints is bigger
        assert measurement.peak_bytes >= measurement.net_bytes
        assert measurement.net_mib > 0

    def test_small_build(self):
        _, measurement = measure_allocations(lambda: None)
        assert measurement.net_bytes >= 0
