"""Unit tests for the stream event model."""

import pytest

from repro.streams.events import (
    EdgeEvent,
    EventKind,
    add_edge,
    add_vertex,
    canonical_edge,
    count_kinds,
    delete_edge,
    delete_vertex,
    events_from_edges,
)


class TestCanonicalEdge:
    def test_orders_endpoints(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loop"):
            canonical_edge(3, 3)

    def test_string_vertices(self):
        assert canonical_edge("b", "a") == ("a", "b")

    def test_mixed_types_fall_back_to_repr_order(self):
        edge = canonical_edge("x", 1)
        assert set(edge) == {"x", 1}
        assert canonical_edge(1, "x") == edge


class TestEdgeEvent:
    def test_add_edge_canonicalizes(self):
        event = add_edge(5, 2)
        assert (event.u, event.v) == (2, 5)
        assert event.edge == (2, 5)
        assert event.is_edge_event

    def test_delete_edge(self):
        event = delete_edge(9, 4)
        assert event.kind is EventKind.DELETE_EDGE
        assert event.edge == (4, 9)

    def test_vertex_events_have_no_edge(self):
        event = add_vertex(7)
        assert not event.is_edge_event
        with pytest.raises(ValueError):
            _ = event.edge

    def test_edge_event_requires_two_endpoints(self):
        with pytest.raises(ValueError, match="two endpoints"):
            EdgeEvent(EventKind.ADD_EDGE, 1, None)

    def test_vertex_event_rejects_second_endpoint(self):
        with pytest.raises(ValueError, match="single vertex"):
            EdgeEvent(EventKind.ADD_VERTEX, 1, 2)

    def test_events_are_hashable_and_equal(self):
        assert add_edge(1, 2) == add_edge(2, 1)
        assert len({add_edge(1, 2), add_edge(2, 1), delete_edge(1, 2)}) == 2

    def test_delete_vertex_kind(self):
        assert delete_vertex(3).kind is EventKind.DELETE_VERTEX


class TestHelpers:
    def test_events_from_edges(self):
        events = list(events_from_edges([(1, 2), (3, 4)]))
        assert all(e.kind is EventKind.ADD_EDGE for e in events)
        assert [e.edge for e in events] == [(1, 2), (3, 4)]

    def test_count_kinds(self):
        events = [add_edge(1, 2), delete_edge(1, 2), add_vertex(3)]
        counts = count_kinds(events)
        assert counts[EventKind.ADD_EDGE] == 1
        assert counts[EventKind.DELETE_EDGE] == 1
        assert counts[EventKind.ADD_VERTEX] == 1
        assert counts[EventKind.DELETE_VERTEX] == 0
