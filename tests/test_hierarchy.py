"""Unit tests for multi-resolution clustering."""

import pytest

from repro.core import ClustererConfig
from repro.core.hierarchy import MultiResolutionClusterer
from repro.streams import insert_only_stream, planted_partition


def make(capacity=1000, num_levels=3, ratio=4.0, seed=0):
    return MultiResolutionClusterer(
        ClustererConfig(reservoir_capacity=capacity, strict=False, seed=seed),
        num_levels=num_levels,
        ratio=ratio,
    )


class TestConstruction:
    def test_geometric_capacities(self):
        bank = make(capacity=1600, num_levels=3, ratio=4.0)
        assert bank.capacities() == [1600, 400, 100]

    def test_capacity_floor_is_one(self):
        bank = make(capacity=4, num_levels=4, ratio=4.0)
        assert bank.capacities()[-1] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            make(num_levels=0)
        with pytest.raises(ValueError):
            make(ratio=1.0)

    def test_levels_have_independent_seeds(self):
        bank = make(num_levels=3)
        seeds = {level.config.seed for level in bank.levels}
        assert len(seeds) == 3

    def test_repr(self):
        assert "levels=2" in repr(make(num_levels=2))


class TestResolutionBehaviour:
    @pytest.fixture(scope="class")
    def trained(self):
        graph = planted_partition(200, 4, p_in=0.3, p_out=0.002, seed=55)
        events = insert_only_stream(graph.edges, seed=55)
        bank = make(capacity=len(events), num_levels=3, ratio=8.0, seed=5)
        bank.process(events)
        return bank, graph

    def test_finer_levels_have_more_clusters(self, trained):
        bank, _ = trained
        counts = [snapshot.num_clusters for snapshot in bank.snapshots()]
        assert counts[0] < counts[1] < counts[2]

    def test_coarsest_split_level_orders_relationships(self, trained):
        bank, graph = trained
        # Intra-community pairs separate later (or never) compared to
        # cross-community pairs, on average.
        intra = [(0, 4), (1, 5), (2, 6)]  # community = v % 4
        cross = [(0, 1), (1, 2), (2, 3)]

        def score(pair):
            level = bank.coarsest_split_level(*pair)
            return bank.num_levels if level is None else level

        assert sum(score(p) for p in intra) >= sum(score(p) for p in cross)

    def test_affinity_bounds(self, trained):
        bank, _ = trained
        assert 0.0 <= bank.affinity(0, 1) <= 1.0
        assert bank.affinity(0, 0) == 1.0

    def test_level_snapshot_consistency(self, trained):
        bank, _ = trained
        for index in range(bank.num_levels):
            snapshot = bank.snapshot(index)
            assert snapshot.num_clusters == bank.levels[index].num_clusters

    def test_unseen_vertices(self, trained):
        bank, _ = trained
        assert bank.coarsest_split_level("ghost1", "ghost2") == 0
        assert bank.affinity("ghost1", "ghost2") == 0.0
