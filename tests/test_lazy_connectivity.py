"""Unit and cross-validation tests for LazyRebuildConnectivity."""

import random

import pytest

from repro.connectivity import (
    LazyRebuildConnectivity,
    NaiveDynamicConnectivity,
    make_connectivity,
)
from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.streams import add_edge, delete_edge, insert_only_stream, planted_partition


class TestBasics:
    def test_insert_and_query(self):
        lazy = LazyRebuildConnectivity()
        assert lazy.insert_edge(1, 2)
        lazy.insert_edge(2, 3)
        assert lazy.connected(1, 3)
        assert lazy.component_size(1) == 3

    def test_duplicate_insert_raises(self):
        lazy = LazyRebuildConnectivity()
        lazy.insert_edge(1, 2)
        with pytest.raises(ValueError):
            lazy.insert_edge(2, 1)

    def test_delete_defers_rebuild(self):
        lazy = LazyRebuildConnectivity()
        lazy.insert_edge(1, 2)
        lazy.insert_edge(2, 3)
        _ = lazy.num_components  # force a clean cache
        rebuilds_before = lazy.rebuilds
        assert lazy.delete_edge(1, 2) is True  # conservative indication
        assert lazy.rebuilds == rebuilds_before  # no rebuild yet
        assert not lazy.connected(1, 2)  # query triggers the rebuild
        assert lazy.rebuilds == rebuilds_before + 1

    def test_mutations_never_rebuild(self):
        lazy = LazyRebuildConnectivity()
        for i in range(50):
            lazy.insert_edge(i, i + 1)
        for i in range(0, 40, 2):
            lazy.delete_edge(i, i + 1)
        for i in range(0, 40, 2):
            lazy.insert_edge(i, i + 1)
        assert lazy.rebuilds == 0
        assert lazy.connected(0, 50)  # single rebuild answers everything
        assert lazy.rebuilds == 1

    def test_delete_absent_raises(self):
        lazy = LazyRebuildConnectivity()
        with pytest.raises(KeyError):
            lazy.delete_edge(1, 2)

    def test_unknown_vertices(self):
        lazy = LazyRebuildConnectivity()
        assert lazy.connected("x", "x")
        assert not lazy.connected("x", "y")
        assert lazy.component_size("x") == 1
        assert lazy.component_members("x") == {"x"}

    def test_remove_isolated_vertex(self):
        lazy = LazyRebuildConnectivity()
        lazy.add_vertex(1)
        lazy.insert_edge(2, 3)
        assert lazy.remove_vertex_if_isolated(1)
        assert not lazy.remove_vertex_if_isolated(2)

    def test_factory(self):
        assert isinstance(make_connectivity("lazy"), LazyRebuildConnectivity)


class TestCrossValidation:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_queries_match_naive_at_every_point(self, seed):
        rng = random.Random(seed)
        lazy = LazyRebuildConnectivity()
        naive = NaiveDynamicConnectivity()
        nodes = list(range(25))
        edges = set()
        for _ in range(800):
            u, v = rng.sample(nodes, 2)
            e = (min(u, v), max(u, v))
            if e in edges:
                lazy.delete_edge(*e)
                naive.delete_edge(*e)
                edges.discard(e)
            else:
                lazy.insert_edge(*e)
                naive.insert_edge(*e)
                edges.add(e)
            a, b = rng.sample(nodes, 2)
            assert lazy.connected(a, b) == naive.connected(a, b)
            assert lazy.component_size(a) == naive.component_size(a)
            assert lazy.num_components == naive.num_components
        lazy_groups = sorted(tuple(sorted(g)) for g in lazy.components())
        naive_groups = sorted(tuple(sorted(g)) for g in naive.components())
        assert lazy_groups == naive_groups


class TestClustererIntegration:
    def test_snapshot_matches_hdt_backend(self):
        graph = planted_partition(80, 4, 0.3, 0.01, seed=71)
        events = insert_only_stream(graph.edges, seed=71)
        snapshots = {}
        for backend in ("hdt", "lazy"):
            clusterer = StreamingGraphClusterer(
                ClustererConfig(
                    reservoir_capacity=100,
                    connectivity_backend=backend,
                    strict=False,
                    seed=3,
                )
            ).process(events)
            snapshots[backend] = clusterer.snapshot()
        assert snapshots["hdt"] == snapshots["lazy"]

    def test_split_counter_is_upper_bound(self):
        events = [add_edge(i, i + 1) for i in range(20)]
        events += [delete_edge(i, i + 1) for i in range(20)]
        exact = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=100, seed=1)
        ).process(list(events))
        lazy = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=100, connectivity_backend="lazy", seed=1
            )
        ).process(list(events))
        assert lazy.stats.component_splits >= exact.stats.component_splits
        assert lazy.snapshot() == exact.snapshot()
