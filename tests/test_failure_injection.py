"""Failure-injection tests: malformed streams, degenerate configs, and
boundary conditions that a long-running deployment will eventually hit."""

import pytest

from repro.core import (
    ClustererConfig,
    DeletionPolicy,
    MaxClusterSize,
    StreamingGraphClusterer,
)
from repro.errors import StreamError
from repro.streams import (
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
    shuffled,
)


class TestDegenerateConfigs:
    def test_capacity_one_reservoir(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=1, strict=False))
        for i in range(100):
            c.apply(add_edge(i, i + 1))
        assert c.reservoir_size == 1
        snapshot = c.snapshot()
        assert snapshot.max_cluster_size == 2  # one sampled edge
        assert snapshot.num_vertices == 101

    def test_capacity_one_with_deletions(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=1, strict=False))
        c.apply(add_edge(1, 2))
        c.apply(delete_edge(1, 2))
        assert c.reservoir_size == 0
        assert c.num_clusters == 2

    def test_constraint_tighter_than_any_edge(self):
        # MaxClusterSize(1) forbids every merge: all clusters stay singletons.
        c = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=100, constraint=MaxClusterSize(1), strict=False
            )
        )
        for i in range(20):
            c.apply(add_edge(i, i + 1))
        assert c.snapshot().max_cluster_size == 1
        assert c.reservoir_size == 0  # every admission vetoed
        assert c.stats.vetoes == 20

    def test_resample_threshold_zero_never_resamples(self):
        c = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=10,
                deletion_policy=DeletionPolicy.RESAMPLE,
                resample_threshold=0.0,
                strict=False,
            )
        )
        for i in range(10):
            c.apply(add_edge(i, i + 1))
        for i in range(9):
            c.apply(delete_edge(i, i + 1))
        assert c.stats.resamples == 0


class TestMalformedStreams:
    def test_interleaved_duplicates_and_ghosts_non_strict(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10, strict=False))
        events = [
            add_edge(1, 2),
            add_edge(1, 2),  # duplicate
            delete_edge(3, 4),  # ghost delete
            delete_vertex(42),  # ghost vertex delete
            add_edge(2, 3),
            delete_edge(1, 2),
            delete_edge(1, 2),  # double delete
        ]
        c.process(events)
        assert c.stats.malformed_events == 4
        assert c.graph.num_edges == 1
        assert c.reservoir_size == 1

    def test_strict_mode_stops_at_first_malformation(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10, strict=True))
        c.apply(add_edge(1, 2))
        with pytest.raises(StreamError):
            c.apply(add_edge(1, 2))
        # State before the bad event is intact and usable.
        assert c.graph.num_edges == 1
        c.apply(add_edge(2, 3))
        assert c.graph.num_edges == 2

    def test_self_loop_rejected_at_event_construction(self):
        with pytest.raises(ValueError):
            add_edge(5, 5)

    def test_add_delete_add_same_edge(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10))
        c.apply(add_edge(1, 2))
        c.apply(delete_edge(1, 2))
        c.apply(add_edge(1, 2))
        assert c.graph.num_edges == 1
        assert c.same_cluster(1, 2) or c.reservoir_size == 0

    def test_vertex_delete_then_reuse(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10))
        c.apply(add_edge(1, 2))
        c.apply(delete_vertex(1))
        c.apply(add_edge(1, 3))  # vertex id reused after deletion
        assert c.same_cluster(1, 3)
        assert not c.same_cluster(1, 2)

    def test_isolated_vertex_lifecycle(self):
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=10))
        c.apply(add_vertex(7))
        c.apply(add_vertex(7))  # idempotent
        c.apply(delete_vertex(7))
        assert 7 not in c.snapshot()


class TestAdversarialOrders:
    def test_bridges_first_order_still_bounded_by_constraint(self):
        from repro.streams import adversarial_bridge_first, planted_partition

        graph = planted_partition(100, 2, p_in=0.3, p_out=0.0, seed=41)
        bridges = [(i, 50 + i) for i in range(10)]
        events = adversarial_bridge_first(graph.edges, bridges, seed=41)
        c = StreamingGraphClusterer(
            ClustererConfig(
                reservoir_capacity=2000, constraint=MaxClusterSize(60), strict=False
            )
        ).process(events)
        assert c.snapshot().max_cluster_size <= 60

    def test_order_does_not_change_final_graph(self):
        events = [add_edge(i, i + 1) for i in range(30)]
        a = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=1000))
        b = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=1000))
        a.process(events)
        b.process(shuffled(events, seed=4))
        # Reservoir is under-full in both: identical final clustering.
        assert a.snapshot() == b.snapshot()


class TestLongRunStability:
    def test_repeated_full_churn_cycles(self):
        """Build and tear down the whole graph many times; structures
        must not leak state across cycles."""
        c = StreamingGraphClusterer(ClustererConfig(reservoir_capacity=20))
        edges = [(i, i + 1) for i in range(15)]
        for _ in range(25):
            for u, v in edges:
                c.apply(add_edge(u, v))
            for u, v in edges:
                c.apply(delete_edge(u, v))
        assert c.graph.num_edges == 0
        assert c.reservoir_size == 0
        assert all(c.cluster_size(v) == 1 for v in c.vertices())

    def test_hdt_backend_survives_vertex_recycling(self):
        c = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=50, connectivity_backend="hdt")
        )
        for cycle in range(10):
            for i in range(10):
                c.apply(add_edge(i, (i + 1) % 10 + 20))
            for i in range(10):
                c.apply(delete_vertex(i))
        assert c.graph.num_edges == 0
