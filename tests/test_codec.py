"""Round-trip and robustness tests for the binary event-batch codec."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import add_edge, delete_vertex
from repro.streams.codec import (
    CODEC_VERSION,
    decode_batch,
    encode_batch,
    encode_batches,
)
from repro.streams.events import EventKind

# Vertex ids the stream readers can actually produce: ints (including
# values outside the signed 64-bit range) and arbitrary unicode strings.
_vertices = st.one_of(
    st.integers(),
    st.integers(min_value=1 << 64, max_value=1 << 80),
    st.text(max_size=12),
)

_edge_kinds = st.sampled_from([EventKind.ADD_EDGE, EventKind.DELETE_EDGE])
_vertex_kinds = st.sampled_from([EventKind.ADD_VERTEX, EventKind.DELETE_VERTEX])

_events = st.lists(
    st.one_of(
        st.tuples(_edge_kinds, _vertices, _vertices),
        st.tuples(_vertex_kinds, _vertices, st.none()),
    ),
    max_size=60,
)


class TestRoundTrip:
    @given(_events)
    @settings(max_examples=200, deadline=None)
    def test_single_frame_roundtrip_is_exact(self, events):
        assert decode_batch(encode_batch(events)) == events

    @given(_events, st.integers(min_value=1, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_split_frames_concatenate_to_input(self, events, max_bytes):
        frames = list(encode_batches(events, max_bytes=max_bytes))
        decoded = [event for frame in frames for event in decode_batch(frame)]
        assert decoded == events
        # Only a frame holding a single oversized event may exceed the cap.
        for frame in frames:
            if len(frame) > max_bytes:
                assert len(decode_batch(frame)) == 1

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []
        assert list(encode_batches([], max_bytes=64)) == []

    def test_unicode_labels(self):
        events = [(EventKind.ADD_EDGE, "naïve-α", "vertex-\U0001f600")]
        assert decode_batch(encode_batch(events)) == events

    def test_bigint_and_negative_vertices(self):
        events = [(EventKind.ADD_EDGE, -(1 << 70), (1 << 70) + 3)]
        assert decode_batch(encode_batch(events)) == events

    def test_edge_event_objects_accepted(self):
        frame = encode_batch([add_edge(1, 2), delete_vertex(3)])
        assert decode_batch(frame) == [
            (EventKind.ADD_EDGE, 1, 2),
            (EventKind.DELETE_VERTEX, 3, None),
        ]

    def test_interning_shares_table_entries(self):
        events = [(EventKind.ADD_EDGE, "hub", f"leaf-{i}") for i in range(50)]
        frame = encode_batch(events)
        # "hub" appears once in the table, not 50 times.
        assert frame.count(b"hub") == 1
        assert decode_batch(frame) == events


class TestEncodingErrors:
    def test_bool_vertices_rejected(self):
        with pytest.raises(TypeError, match="int and str"):
            encode_batch([(EventKind.ADD_EDGE, True, 2)])

    def test_unsupported_vertex_type_rejected(self):
        with pytest.raises(TypeError, match="float"):
            encode_batch([(EventKind.ADD_EDGE, 1.5, 2)])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            encode_batch([("not-a-kind", 1, 2)])

    def test_nonpositive_max_bytes_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            list(encode_batches([add_edge(1, 2)], max_bytes=0))


class TestDecodingErrors:
    FRAME = encode_batch([(EventKind.ADD_EDGE, 1, "two")])

    def test_truncation_rejected(self):
        for cut in range(len(self.FRAME)):
            with pytest.raises(ValueError, match="corrupt event frame"):
                decode_batch(self.FRAME[:cut])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            decode_batch(self.FRAME + b"\x00")

    def test_future_version_rejected(self):
        bogus = bytes([CODEC_VERSION + 1]) + self.FRAME[1:]
        with pytest.raises(ValueError, match="version"):
            decode_batch(bogus)

    def test_unknown_kind_code_rejected(self):
        frame = bytearray(encode_batch([(EventKind.ADD_EDGE, 1, 2)]))
        frame[-12] = 200  # kind field of the only event triplet
        with pytest.raises(ValueError, match="kind code"):
            decode_batch(bytes(frame))

    def test_out_of_range_vertex_index_rejected(self):
        frame = bytearray(encode_batch([(EventKind.ADD_EDGE, 1, 2)]))
        frame[-8] = 9  # u_index beyond the 2-entry table
        with pytest.raises(ValueError, match="out of range"):
            decode_batch(bytes(frame))

    def test_vertex_event_with_endpoint_rejected(self):
        frame = bytearray(encode_batch([(EventKind.ADD_VERTEX, 1, None)]))
        frame[-4:] = (0).to_bytes(4, "little")  # v_index: NO_VERTEX -> 0
        with pytest.raises(ValueError, match="second"):
            decode_batch(bytes(frame))

    def test_edge_missing_endpoint_rejected(self):
        frame = bytearray(encode_batch([(EventKind.ADD_EDGE, 1, 2)]))
        frame[-4:] = (0xFFFFFFFF).to_bytes(4, "little")
        with pytest.raises(ValueError, match="endpoint"):
            decode_batch(bytes(frame))
