"""Tests for the streaming clustering service (repro.serve).

Three layers:

* wire primitives — handshake and length-prefix framing round-trips,
  the interner-free delta decoder;
* protocol robustness — truncated/oversized/corrupt frames and bad
  handshakes are rejected *per connection* while the daemon and other
  tenants keep serving;
* service semantics — concurrent tenants produce partitions (and
  checkpoint bytes) identical to inline runs of the same streams,
  queries are barriers, backpressure isolates a stalled tenant, and
  graceful shutdown writes loadable per-tenant checkpoints.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import ClustererConfig, StreamingGraphClusterer
from repro.errors import ProtocolError, ServiceError
from repro.persist import load_checkpoint, save_checkpoint
from repro.serve import ClusterService, ServiceClient
from repro.serve.protocol import (
    OP_ERROR,
    OP_EVENTS,
    OP_HELLO,
    OP_OK,
    recv_message,
    render_snapshot,
    send_message,
    valid_tenant_id,
)
from repro.streams import planted_partition, insert_only_stream_raw
from repro.streams.codec import (
    DeltaBatchDecoder,
    FrameEncoder,
    decode_hello,
    encode_hello,
    pack_wire_message,
    split_wire_message,
)

SRC = str(Path(__file__).resolve().parents[1] / "src")


def _config(**overrides):
    defaults = dict(reservoir_capacity=400, strict=False, seed=7)
    defaults.update(overrides)
    return ClustererConfig(**defaults)


def _events(seed=5, n=120, k=4):
    graph = planted_partition(n, k, 0.3, 0.002, seed=seed)
    return insert_only_stream_raw(graph.edges, seed=7)


def _inline_snapshot(config, events):
    clusterer = StreamingGraphClusterer(config)
    clusterer.apply_many(events)
    return clusterer, render_snapshot(clusterer.snapshot())


class _RunningService:
    """A ClusterService on a daemon thread, for blocking test clients."""

    def __init__(self, service):
        self.service = service
        self.exit_code = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = self.service.run()

    def __enter__(self):
        self.thread.start()
        assert self.service.started.wait(timeout=15.0), "service never bound"
        return self

    def stop(self, code=0):
        self.service.request_shutdown(code)
        self.thread.join(timeout=15.0)
        assert not self.thread.is_alive(), "service failed to stop"

    def __exit__(self, exc_type, exc_value, traceback):
        self.stop()

    @property
    def endpoint(self):
        return self.service.endpoint


class TestWirePrimitives:
    def test_hello_round_trip(self):
        assert decode_hello(encode_hello("tenant-1")) == ("tenant-1", None)
        assert decode_hello(encode_hello("日本")) == ("日本", None)

    def test_hello_kernel_byte_round_trip(self):
        assert decode_hello(encode_hello("t", "scalar")) == ("t", "scalar")
        assert decode_hello(encode_hello("t", "numpy")) == ("t", "numpy")
        with pytest.raises(ValueError, match="kernel"):
            encode_hello("t", "fortran")
        with pytest.raises(ValueError, match="kernel"):
            decode_hello(encode_hello("t") + b"\x07")
        with pytest.raises(ValueError, match="does not match"):
            decode_hello(encode_hello("t") + b"\x00\x01")

    def test_hello_rejects_bad_magic_version_and_truncation(self):
        good = encode_hello("t")
        with pytest.raises(ValueError, match="magic"):
            decode_hello(b"XXXX" + good[4:])
        with pytest.raises(ValueError, match="wire version"):
            decode_hello(good[:4] + b"\xff" + good[5:])
        with pytest.raises(ValueError, match="does not match"):
            decode_hello(good[:-1])
        with pytest.raises(ValueError, match="truncated"):
            decode_hello(good[:5])

    def test_pack_and_split(self):
        message = pack_wire_message(b"E", b"payload")
        assert message[:4] == (8).to_bytes(4, "little")
        assert split_wire_message(message[4:]) == (b"E", b"payload")
        with pytest.raises(ValueError, match="single byte"):
            pack_wire_message(b"EE")
        with pytest.raises(ValueError, match="empty body"):
            split_wire_message(b"")

    def test_delta_batch_decoder_round_trip(self):
        events = _events()
        encoder = FrameEncoder()
        decoder = DeltaBatchDecoder()
        decoded = []
        for frame in encoder.encode_batches(events, max_bytes=4096):
            decoded.extend(decoder.decode(frame))
        assert decoded == list(events)
        assert decoder.table_size == encoder.table_size

    def test_delta_batch_decoder_rejects_corruption(self):
        frame = FrameEncoder().encode_batch(_events()[:10])
        with pytest.raises(ValueError):
            DeltaBatchDecoder().decode(frame[:-3])
        with pytest.raises(ValueError, match="delta codec version"):
            DeltaBatchDecoder().decode(b"\x07" + frame[1:])

    def test_tenant_id_validation(self):
        assert valid_tenant_id("alpha-1.B_2")
        assert not valid_tenant_id("")
        assert not valid_tenant_id(".hidden")
        assert not valid_tenant_id("has space")
        assert not valid_tenant_id("slash/y")
        assert not valid_tenant_id("x" * 200)


class TestProtocolRobustness:
    """Bad clients lose their connection; nobody else notices."""

    def _raw_socket(self, endpoint):
        sock = socket.create_connection(endpoint, timeout=10.0)
        sock.settimeout(10.0)
        return sock

    def test_oversized_frame_rejected_without_killing_daemon(self):
        service = ClusterService(_config(), max_frame_bytes=1024)
        with _RunningService(service) as running:
            sock = self._raw_socket(running.endpoint)
            send_message(sock, OP_HELLO, encode_hello("big"))
            assert recv_message(sock)[0] == OP_OK
            # Declare a body far over the 1 KiB ceiling.
            sock.sendall((1 << 20).to_bytes(4, "little"))
            op, payload = recv_message(sock)
            assert op == OP_ERROR
            assert b"oversized" in bytes(payload)
            sock.close()
            # The daemon is fine: a fresh client still gets service.
            with ServiceClient(running.endpoint, tenant="big") as client:
                client.send_events(_events()[:50])
                assert client.metrics()["events"] == 50

    def test_truncated_message_closes_only_that_connection(self):
        service = ClusterService(_config())
        with _RunningService(service) as running:
            sock = self._raw_socket(running.endpoint)
            send_message(sock, OP_HELLO, encode_hello("trunc"))
            assert recv_message(sock)[0] == OP_OK
            # Promise 100 body bytes, deliver 10, hang up.
            sock.sendall((100).to_bytes(4, "little") + b"x" * 10)
            sock.close()
            with ServiceClient(running.endpoint, tenant="trunc") as client:
                client.send_events(_events()[:20])
                assert client.metrics()["events"] == 20

    def test_corrupt_event_frame_rejected(self):
        service = ClusterService(_config())
        with _RunningService(service) as running:
            sock = self._raw_socket(running.endpoint)
            send_message(sock, OP_HELLO, encode_hello("corrupt"))
            assert recv_message(sock)[0] == OP_OK
            send_message(sock, OP_EVENTS, b"\xff\xffgarbage")
            op, payload = recv_message(sock)
            assert op == OP_ERROR
            assert b"corrupt event frame" in bytes(payload)
            sock.close()

    def test_handshake_required_first(self):
        service = ClusterService(_config())
        with _RunningService(service) as running:
            sock = self._raw_socket(running.endpoint)
            send_message(sock, OP_EVENTS, b"")
            op, payload = recv_message(sock)
            assert op == OP_ERROR
            assert b"HELLO" in bytes(payload)
            sock.close()

    def test_bad_tenant_id_refused(self):
        service = ClusterService(_config())
        with _RunningService(service) as running:
            with pytest.raises(ServiceError, match="invalid tenant id"):
                ServiceClient(running.endpoint, tenant="no/slash")

    def test_admission_control_max_tenants(self):
        service = ClusterService(_config(), max_tenants=1)
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="first") as first:
                with pytest.raises(ServiceError, match="tenant limit"):
                    ServiceClient(running.endpoint, tenant="second")
                # The admitted tenant is unaffected, and a second
                # connection to the *same* tenant is not a new admission.
                first.send_events(_events()[:30])
                with ServiceClient(running.endpoint, tenant="first") as again:
                    assert again.metrics()["events"] == 30

    def test_client_protocol_error_type(self):
        # recv_message on a socket the server already closed surfaces a
        # ServiceError via the client helpers, not a raw OSError.
        service = ClusterService(_config())
        with _RunningService(service) as running:
            client = ServiceClient(running.endpoint, tenant="gone")
            client._send(OP_EVENTS, b"\x00garbage")  # draws ERROR + close
            with pytest.raises((ServiceError, ProtocolError)):
                client.snapshot()
            client._sock.close()
            client._sock = None


class TestServiceSemantics:
    def test_two_concurrent_tenants_match_inline_runs(self, tmp_path):
        config = _config()
        streams = {
            "alpha": _events(seed=5),
            "beta": _events(seed=11, n=90, k=3),
        }
        inline = {}
        for tenant, events in streams.items():
            clusterer, snapshot = _inline_snapshot(config, events)
            inline[tenant] = (clusterer, snapshot)

        service = ClusterService(
            config, checkpoint_dir=str(tmp_path / "ckpt")
        )
        served = {}
        errors = []

        def _stream(tenant):
            try:
                with ServiceClient(service.endpoint, tenant=tenant) as client:
                    # Interleave in small frames so both tenants are
                    # genuinely concurrent on the server.
                    events = streams[tenant]
                    for start in range(0, len(events), 37):
                        client.send_events(events[start : start + 37])
                    served[tenant] = client.snapshot()
            except Exception as error:  # noqa: BLE001 - report in main thread
                errors.append((tenant, error))

        with _RunningService(service) as running:
            threads = [
                threading.Thread(target=_stream, args=(tenant,))
                for tenant in streams
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not errors, errors
            for tenant, (_, snapshot) in inline.items():
                assert served[tenant] == snapshot, f"tenant {tenant} diverged"
            running.stop()

        # Graceful shutdown wrote one loadable checkpoint per tenant,
        # byte-identical to a checkpoint of the inline run.
        for tenant, events in streams.items():
            path = tmp_path / "ckpt" / f"{tenant}.rpk"
            assert path.exists()
            restored = load_checkpoint(path)
            assert restored.position == len(events)
            assert (
                render_snapshot(restored.clusterer.snapshot())
                == inline[tenant][1]
            )
            reference = tmp_path / f"{tenant}.inline.rpk"
            save_checkpoint(
                inline[tenant][0], reference, position=len(events)
            )
            assert path.read_bytes() == reference.read_bytes()

    def test_mid_stream_snapshot_is_a_barrier(self):
        config = _config()
        events = _events()
        half = len(events) // 2
        clusterer = StreamingGraphClusterer(config)
        clusterer.apply_many(events[:half])
        first_expected = render_snapshot(clusterer.snapshot())
        clusterer.apply_many(events[half:])
        final_expected = render_snapshot(clusterer.snapshot())

        service = ClusterService(config)
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="mid") as client:
                client.send_events(events[:half])
                assert client.snapshot() == first_expected
                client.send_events(events[half:])
                assert client.snapshot() == final_expected

    def test_membership_and_metrics_queries(self):
        config = _config()
        events = _events()
        clusterer = StreamingGraphClusterer(config)
        clusterer.apply_many(events)
        probe = events[0][1]
        expected_members = clusterer.cluster_members(probe)

        service = ClusterService(config)
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="q") as client:
                client.send_events(events)
                assert client.membership(probe) == expected_members
                metrics = client.metrics()
                assert metrics["tenant"] == "q"
                assert metrics["events"] == len(events)
                assert metrics["position"] == len(events)
                assert metrics["queue_lag_events"] == 0
                assert metrics["drops"] == 0
                assert metrics["events_per_second"] > 0
                assert metrics["p99_ingest_seconds"] is None or (
                    metrics["p99_ingest_seconds"] > 0
                )
                assert metrics["reservoir_size"] == clusterer.reservoir_size

    def test_stalled_tenant_does_not_degrade_others(self):
        # Tenant drains are slowed and queues are shallow: "slow" fills
        # its queue and is backpressured while "fast" still completes
        # promptly and correctly.
        config = _config()
        events = _events()
        _, expected = _inline_snapshot(config, events)
        service = ClusterService(
            config, queue_depth=2, ingest_delay=0.05
        )
        with _RunningService(service) as running:
            slow_done = threading.Event()
            lag_seen = []

            def _slow():
                with ServiceClient(running.endpoint, tenant="slow") as client:
                    for start in range(0, len(events), 10):
                        client.send_events(events[start : start + 10])
                    lag_seen.append(client.metrics()["queue_lag_events"])
                slow_done.set()

            slow_thread = threading.Thread(target=_slow)
            slow_thread.start()
            started = time.monotonic()
            with ServiceClient(running.endpoint, tenant="fast") as client:
                client.send_events(events)
                snapshot = client.snapshot()
            fast_elapsed = time.monotonic() - started
            assert snapshot == expected
            # The fast tenant's barrier answered while the slow tenant
            # was still grinding through its throttled queue.
            assert not slow_done.is_set() or fast_elapsed < 2.0
            slow_thread.join(timeout=120.0)
            assert slow_done.is_set()
            # The slow tenant eventually applied everything too (its
            # metrics call was a barrier behind all of its events).
            assert lag_seen == [0]

    def test_resume_tenant_across_service_restarts(self, tmp_path):
        config = _config()
        events = _events()
        half = len(events) // 2
        _, expected = _inline_snapshot(config, events)
        ckpt_dir = str(tmp_path / "ckpt")

        service = ClusterService(config, checkpoint_dir=ckpt_dir)
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="durable") as client:
                client.send_events(events[:half])

        service = ClusterService(
            _config(), checkpoint_dir=ckpt_dir, resume=True
        )
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="durable") as client:
                assert client.metrics()["position"] == half
                client.send_events(events[half:])
                assert client.snapshot() == expected

    def test_resume_refuses_conflicting_service_config(self, tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        service = ClusterService(_config(), checkpoint_dir=ckpt_dir)
        with _RunningService(service) as running:
            with ServiceClient(running.endpoint, tenant="strict") as client:
                client.send_events(_events()[:20])

        service = ClusterService(
            _config(reservoir_capacity=999), checkpoint_dir=ckpt_dir,
            resume=True,
        )
        with _RunningService(service) as running:
            with pytest.raises(ServiceError, match="conflicting"):
                ServiceClient(running.endpoint, tenant="strict")

    def test_unix_socket_endpoint(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        service = ClusterService(_config(), path=path)
        with _RunningService(service) as running:
            assert running.endpoint == path
            with ServiceClient(path, tenant="ux") as client:
                client.send_events(_events()[:40])
                assert client.metrics()["events"] == 40
        assert not os.path.exists(path)  # cleaned up at shutdown


class TestServeCli:
    def test_send_cli_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        edges = tmp_path / "graph.edges"
        assert main([
            "generate", "--sbm", "100", "4", "0.3", "0.002",
            "--seed", "5", "--out", str(edges),
        ]) == 0
        inline_labels = tmp_path / "inline.labels"
        assert main([
            "cluster", str(edges), "--capacity", "400",
            "--seed", "7", "--out", str(inline_labels),
        ]) == 0
        capsys.readouterr()

        config = ClustererConfig(reservoir_capacity=400, strict=False, seed=7)
        service = ClusterService(config)
        with _RunningService(service) as running:
            host, port = running.endpoint
            served_labels = tmp_path / "served.labels"
            metrics_path = tmp_path / "send.metrics.json"
            code = main([
                "send", str(edges), "--tenant", "cli",
                "--host", host, "--port", str(port), "--seed", "7",
                "--out", str(served_labels),
                "--metrics-out", str(metrics_path),
            ])
            assert code == 0
            assert "sent" in capsys.readouterr().err
            assert served_labels.read_bytes() == inline_labels.read_bytes()
            import json

            metrics = json.loads(metrics_path.read_text())
            assert metrics["tenant"] == "cli"
            assert metrics["events"] > 0

    def test_send_refuses_unreachable_service(self, tmp_path, capsys):
        from repro.cli import main

        edges = tmp_path / "graph.edges"
        edges.write_text("1 2\n2 3\n")
        code = main([
            "send", str(edges), "--tenant", "x",
            "--unix", str(tmp_path / "nope.sock"),
        ])
        assert code == 2
        assert "cannot connect" in capsys.readouterr().err

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_serve_sigint_exits_130_with_loadable_checkpoints(self, tmp_path):
        sock = str(tmp_path / "svc.sock")
        ckpt_dir = tmp_path / "ckpt"
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--capacity", "400", "--seed", "7",
                "--unix", sock, "--checkpoint-dir", str(ckpt_dir),
            ],
            env=env, stderr=subprocess.PIPE, text=True,
        )
        try:
            deadline = time.monotonic() + 30.0
            while not os.path.exists(sock):
                assert proc.poll() is None, proc.stderr.read()
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.05)
            events = _events()
            with ServiceClient(sock, tenant="alpha") as client:
                client.send_events(events)
                # Barrier: everything is applied before the signal.
                assert client.metrics()["events"] == len(events)
            proc.send_signal(signal.SIGINT)
            code = proc.wait(timeout=30.0)
        finally:
            if proc.poll() is None:
                proc.kill()
        stderr = proc.stderr.read()
        assert code == 130, stderr
        assert "Traceback" not in stderr
        assert "interrupted" in stderr
        restored = load_checkpoint(ckpt_dir / "alpha.rpk")
        assert restored.position == len(events)
        _, expected = _inline_snapshot(_config(), events)
        assert render_snapshot(restored.clusterer.snapshot()) == expected
