"""Unit tests for edge-list and event-stream I/O."""

import io

import pytest

from repro.errors import StreamError
from repro.streams import (
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
    read_edge_list,
    read_event_stream,
    write_edge_list,
    write_event_stream,
)


class TestEdgeList:
    def test_roundtrip_via_path(self, tmp_path):
        edges = [(1, 2), (3, 4), ("a", "b")]
        path = tmp_path / "graph.edges"
        assert write_edge_list(edges, path) == 3
        assert read_edge_list(path) == edges

    def test_roundtrip_via_file_object(self):
        buffer = io.StringIO()
        write_edge_list([(1, 2)], buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == [(1, 2)]

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n1 2\n# mid\n3 4\n"
        assert read_edge_list(io.StringIO(text)) == [(1, 2), (3, 4)]

    def test_self_loop_raises_when_strict(self):
        # Same policy as the event-stream readers: a self-loop is
        # malformed input, not something to drop silently.
        with pytest.raises(StreamError, match=r":1:.*self-loop"):
            read_edge_list(io.StringIO("1 1\n1 2\n"))

    def test_self_loop_skipped_and_counted_when_not_strict(self):
        errors = []
        edges = read_edge_list(
            io.StringIO("1 1\n1 2\n"), strict=False, errors=errors
        )
        assert edges == [(1, 2)]
        assert len(errors) == 1
        assert "self-loop" in errors[0] and ":1:" in errors[0]

    def test_extra_columns_tolerated(self):
        # SNAP files sometimes carry timestamps in a third column.
        assert read_edge_list(io.StringIO("1 2 1234567\n")) == [(1, 2)]

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(StreamError, match=":2:"):
            read_edge_list(io.StringIO("1 2\njunk\n"))

    def test_malformed_line_is_still_a_value_error(self):
        # Back-compat: StreamError subclasses ValueError.
        with pytest.raises(ValueError):
            read_edge_list(io.StringIO("junk\n"))

    def test_path_context_in_error(self, tmp_path):
        bad = tmp_path / "bad.edges"
        bad.write_text("1 2\njunk\n")
        with pytest.raises(StreamError, match="bad.edges:2"):
            read_edge_list(bad)

    def test_non_strict_skips_and_counts(self):
        errors = []
        edges = read_edge_list(
            io.StringIO("1 2\njunk\n3 4\nalso-junk\n"),
            strict=False,
            errors=errors,
        )
        assert edges == [(1, 2), (3, 4)]
        assert len(errors) == 2
        assert ":2:" in errors[0] and ":4:" in errors[1]


class TestEventStream:
    def test_roundtrip(self, tmp_path):
        events = [
            add_vertex(7),
            add_edge(1, 2),
            delete_edge(1, 2),
            delete_vertex(7),
        ]
        path = tmp_path / "stream.events"
        assert write_event_stream(events, path) == 4
        assert list(read_event_stream(path)) == events

    def test_string_vertices_roundtrip(self):
        buffer = io.StringIO()
        write_event_stream([add_edge("alice", "bob")], buffer)
        buffer.seek(0)
        assert list(read_event_stream(buffer)) == [add_edge("alice", "bob")]

    def test_lazy_reading(self):
        buffer = io.StringIO("+ 1 2\n+ 3 4\n")
        iterator = read_event_stream(buffer)
        assert next(iterator) == add_edge(1, 2)

    def test_unknown_op_raises(self):
        with pytest.raises(StreamError, match=":1:"):
            list(read_event_stream(io.StringIO("* 1 2\n")))

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            list(read_event_stream(io.StringIO("+ 1\n")))

    def test_non_strict_skips_and_counts(self):
        errors = []
        events = list(read_event_stream(
            io.StringIO("+ 1 2\n* what\n- 1 2\n+ 3 3\n"),
            strict=False,
            errors=errors,
        ))
        assert events == [add_edge(1, 2), delete_edge(1, 2)]
        assert len(errors) == 2  # unknown op + self-loop

    def test_comments_skipped(self):
        buffer = io.StringIO("# stream\n+ 1 2\n")
        assert list(read_event_stream(buffer)) == [add_edge(1, 2)]


class TestInterningReader:
    def test_interned_stream_equals_plain(self):
        from repro.streams import read_event_stream_raw

        text = "+ a b\n+ a c\n- a b\n+v d\n+ 10 20\n"
        plain = list(read_event_stream_raw(io.StringIO(text)))
        interned = list(read_event_stream_raw(io.StringIO(text), intern=True))
        assert interned == plain

    def test_repeated_tokens_share_one_object(self):
        from repro.streams import read_event_stream_raw

        text = "+ hub leaf1\n+ hub leaf2\n+ hub leaf3\n"
        events = list(read_event_stream_raw(io.StringIO(text), intern=True))
        hubs = [event[1] for event in events]
        assert hubs[0] is hubs[1] is hubs[2]

    def test_batches_forward_intern(self):
        from repro.streams import read_event_batches

        text = "+ x y\n+ x z\n+ y z\n"
        batches = list(
            read_event_batches(io.StringIO(text), 2, intern=True)
        )
        assert [len(b) for b in batches] == [2, 1]
        assert batches[0][0][1] is batches[0][1][1]  # "x" shared
