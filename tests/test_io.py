"""Unit tests for edge-list and event-stream I/O."""

import io

import pytest

from repro.streams import (
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
    read_edge_list,
    read_event_stream,
    write_edge_list,
    write_event_stream,
)


class TestEdgeList:
    def test_roundtrip_via_path(self, tmp_path):
        edges = [(1, 2), (3, 4), ("a", "b")]
        path = tmp_path / "graph.edges"
        assert write_edge_list(edges, path) == 3
        assert read_edge_list(path) == edges

    def test_roundtrip_via_file_object(self):
        buffer = io.StringIO()
        write_edge_list([(1, 2)], buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == [(1, 2)]

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n1 2\n# mid\n3 4\n"
        assert read_edge_list(io.StringIO(text)) == [(1, 2), (3, 4)]

    def test_self_loops_dropped(self):
        assert read_edge_list(io.StringIO("1 1\n1 2\n")) == [(1, 2)]

    def test_extra_columns_tolerated(self):
        # SNAP files sometimes carry timestamps in a third column.
        assert read_edge_list(io.StringIO("1 2 1234567\n")) == [(1, 2)]

    def test_malformed_line_raises_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            read_edge_list(io.StringIO("1 2\njunk\n"))


class TestEventStream:
    def test_roundtrip(self, tmp_path):
        events = [
            add_vertex(7),
            add_edge(1, 2),
            delete_edge(1, 2),
            delete_vertex(7),
        ]
        path = tmp_path / "stream.events"
        assert write_event_stream(events, path) == 4
        assert list(read_event_stream(path)) == events

    def test_string_vertices_roundtrip(self):
        buffer = io.StringIO()
        write_event_stream([add_edge("alice", "bob")], buffer)
        buffer.seek(0)
        assert list(read_event_stream(buffer)) == [add_edge("alice", "bob")]

    def test_lazy_reading(self):
        buffer = io.StringIO("+ 1 2\n+ 3 4\n")
        iterator = read_event_stream(buffer)
        assert next(iterator) == add_edge(1, 2)

    def test_unknown_op_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            list(read_event_stream(io.StringIO("* 1 2\n")))

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            list(read_event_stream(io.StringIO("+ 1\n")))

    def test_comments_skipped(self):
        buffer = io.StringIO("# stream\n+ 1 2\n")
        assert list(read_event_stream(buffer)) == [add_edge(1, 2)]
