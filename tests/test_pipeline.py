"""Equivalence and fault-tolerance tests for the multiprocess pipeline.

The contract under test: for *any* producer batch size, frame size and
worker count, :class:`PipelineClusterer` ends in exactly the state a
sequential :class:`ShardedClusterer` reaches over the same stream —
identical merged partition, identical per-shard event counts, and
byte-identical checkpoint files — and worker deaths mid-stream are
absorbed by the replay log without changing any of that.
"""

from __future__ import annotations

import pytest

from repro.core import (
    ClustererConfig,
    MaxClusterSize,
    PipelineClusterer,
    ShardedClusterer,
    SupervisorConfig,
)
from repro.errors import CheckpointError
from repro.persist import PeriodicCheckpointer, load_checkpoint, save_checkpoint
from repro.streams import insert_delete_stream, planted_partition
from repro.streams.events import EventKind
from repro.util.faults import CrashShard

CONFIG = ClustererConfig(
    reservoir_capacity=60, seed=9, strict=False, constraint=MaxClusterSize(40)
)
FAST = SupervisorConfig(timeout=20.0, max_attempts=3, backoff=0.01)


@pytest.fixture(scope="module")
def events():
    graph = planted_partition(90, 3, p_in=0.3, p_out=0.02, seed=21)
    stream = list(insert_delete_stream(graph.edges, churn=0.3, seed=21))
    # Vertex events exercise the broadcast-barrier path.
    stream.insert(40, (EventKind.ADD_VERTEX, 9999, None))
    stream.append((EventKind.DELETE_VERTEX, 9999, None))
    return stream


@pytest.fixture(scope="module")
def sequential(events):
    """Sequential sharded reference results, one per worker count."""
    cache = {}

    def build(workers: int) -> ShardedClusterer:
        if workers not in cache:
            cache[workers] = ShardedClusterer(CONFIG, num_shards=workers).process(
                list(events), batch_size=64
            )
        return cache[workers]

    return build


def make_pipeline(workers, **kwargs) -> PipelineClusterer:
    kwargs.setdefault("supervisor", FAST)
    return PipelineClusterer(CONFIG, workers, **kwargs)


def test_inlined_routing_matches(events):
    """The producer inlines ``_shard_of`` (key cache + splitmix64); its
    per-shard event counts must match the shared routing definition."""
    from repro.core.sharded import _shard_of
    from repro.streams.events import canonical_edge

    with make_pipeline(3, batch_events=64) as pipe:
        pipe.apply_many(list(events))
        expected = [0, 0, 0]
        for event in events:
            kind = event[0] if type(event) is tuple else event.kind
            if kind in (EventKind.ADD_EDGE, EventKind.DELETE_EDGE):
                u, v = (
                    (event[1], event[2])
                    if type(event) is tuple
                    else (event.u, event.v)
                )
                expected[_shard_of(canonical_edge(u, v), 3)] += 1
            else:
                for shard in range(3):
                    expected[shard] += 1
        assert pipe.shard_events == expected


class TestEquivalence:
    @pytest.mark.parametrize(
        "workers,batch_events,max_frame_bytes",
        [
            (1, 7, 256 * 1024),
            (2, 1, 256 * 1024),
            (3, 64, 256 * 1024),
            (3, 1000, 128),  # tiny frames force codec splits
        ],
    )
    def test_matches_sequential_sharded(
        self, tmp_path, events, sequential, workers, batch_events, max_frame_bytes
    ):
        reference = sequential(workers)
        with make_pipeline(
            workers, batch_events=batch_events, max_frame_bytes=max_frame_bytes
        ) as pipe:
            pipe.process(list(events))
            assert pipe.snapshot() == reference.snapshot()
            assert pipe.shard_events == reference.shard_events
            seq_path = tmp_path / "seq.rpk"
            pipe_path = tmp_path / "pipe.rpk"
            save_checkpoint(reference, seq_path, position=len(events))
            save_checkpoint(pipe, pipe_path, position=len(events))
        assert seq_path.read_bytes() == pipe_path.read_bytes()

    def test_pipeline_checkpoint_restores_as_sharded(
        self, tmp_path, events, sequential
    ):
        path = tmp_path / "pipe.rpk"
        with make_pipeline(3, batch_events=32) as pipe:
            pipe.process(list(events))
            save_checkpoint(pipe, path, position=len(events))
        restored = load_checkpoint(path)
        assert restored.kind == "clusterer.sharded"
        assert isinstance(restored.clusterer, ShardedClusterer)
        assert restored.clusterer.snapshot() == sequential(3).snapshot()

    def test_columnar_input_matches_sequential_sharded(self, sequential):
        """EventColumns routes as v3 frames; same merged partition and
        checkpoint state as a sequential sharded run of the tuples."""
        from repro.streams.events import EventColumns

        graph = planted_partition(90, 3, p_in=0.3, p_out=0.02, seed=21)
        edges = list(graph.edges)
        columns = EventColumns(
            us=[u for u, _ in edges], vs=[v for _, v in edges]
        )
        reference = ShardedClusterer(CONFIG, num_shards=3)
        reference.apply_many(columns.to_events())
        with make_pipeline(3, batch_events=64) as pipe:
            pipe.apply_many(columns)
            assert pipe.snapshot() == reference.snapshot()
            assert pipe.shard_events == reference.shard_events
            assert pipe.frames_sent > 0

    def test_columnar_numpy_kernel_deterministic(self):
        """With kernel='numpy' the columnar wire path is a deterministic
        function of (seed, stream, frame boundaries)."""
        from dataclasses import replace

        from repro.streams.events import EventColumns

        graph = planted_partition(90, 3, p_in=0.3, p_out=0.02, seed=21)
        edges = list(graph.edges)
        columns = EventColumns(
            us=[u for u, _ in edges], vs=[v for _, v in edges]
        )
        config = replace(CONFIG, kernel="numpy")
        snapshots = []
        for _ in range(2):
            with PipelineClusterer(
                config, 3, batch_events=64, supervisor=FAST
            ) as pipe:
                pipe.apply_many(columns)
                snapshots.append(pipe.snapshot())
        assert snapshots[0] == snapshots[1]

    def test_query_surface_matches_sharded(self, events, sequential):
        reference = sequential(2)
        with make_pipeline(2, batch_events=16) as pipe:
            pipe.process(list(events))
            merged = reference.snapshot()
            some = next(iter(merged.vertices()))
            assert pipe.cluster_members(some) == reference.cluster_members(some)
            assert pipe.num_clusters == reference.num_clusters
            assert pipe.total_reservoir_size == reference.total_reservoir_size
            assert pipe.shard_balance == reference.shard_balance
            for u, v in list(reference.shards[0].reservoir_edges())[:5]:
                assert pipe.same_cluster(u, v)


class TestMidStreamCheckpoint:
    def test_periodic_checkpointer_resume_replay_identical(
        self, tmp_path, events, sequential
    ):
        path = tmp_path / "mid.rpk"
        cut = len(events) // 2
        with make_pipeline(3, batch_events=17) as pipe:
            checkpointer = PeriodicCheckpointer(pipe, path, every=50)
            checkpointer.process(events[:cut], batch_size=17)
        # Crash: the run above stops mid-stream. Resume from the last
        # durable save and replay the tail pipelined.
        restored = load_checkpoint(path)
        assert restored.position == cut - cut % 50
        with PipelineClusterer.from_state(
            restored.clusterer.get_state(), batch_events=17, supervisor=FAST
        ) as resumed:
            resumed.process(events[restored.position :])
            assert resumed.snapshot() == sequential(3).snapshot()
            final = tmp_path / "final.rpk"
            save_checkpoint(resumed, final, position=len(events))
        reference = tmp_path / "ref.rpk"
        save_checkpoint(sequential(3), reference, position=len(events))
        assert final.read_bytes() == reference.read_bytes()

    def test_from_state_roundtrip_mid_stream(self, events, sequential):
        cut = len(events) // 3
        state = None
        with make_pipeline(3, batch_events=8) as pipe:
            pipe.process(events[:cut])
            state = pipe.get_state()
        with PipelineClusterer.from_state(
            state, batch_events=64, supervisor=FAST
        ) as resumed:
            resumed.process(events[cut:])
            assert resumed.snapshot() == sequential(3).snapshot()
            assert resumed.shard_events == sequential(3).shard_events

    def test_from_state_shard_count_mismatch_rejected(self, events):
        with make_pipeline(2) as pipe:
            pipe.process(events[:50])
            state = pipe.get_state()
        state["num_shards"] = 3
        with pytest.raises(ValueError, match="shard states"):
            PipelineClusterer.from_state(state)


class TestFaultTolerance:
    def test_startup_crash_is_retried_and_result_unaffected(
        self, events, sequential
    ):
        with make_pipeline(
            3, batch_events=32, fault=CrashShard(shard=1, fail_attempts=1)
        ) as pipe:
            pipe.process(list(events))
            assert pipe.snapshot() == sequential(3).snapshot()
            assert pipe.shard_attempts[1] == 2
            assert pipe.shard_attempts[0] == 1 and pipe.shard_attempts[2] == 1
            assert pipe.worker_restarts >= 1

    def test_worker_death_mid_stream_is_replayed(self, events, sequential):
        cut = len(events) // 2
        with make_pipeline(3, batch_events=16) as pipe:
            pipe.process(events[:cut])
            # Kill one worker the hard way; the next send or control
            # round-trip must revive it and replay the frame log.
            victim = pipe._procs[1]
            victim.terminate()
            victim.join()
            pipe.process(events[cut:])
            assert pipe.snapshot() == sequential(3).snapshot()
            assert pipe.shard_attempts[1] == 2
            assert not any(pipe._failed)

    def test_death_after_checkpoint_replays_only_the_tail(
        self, tmp_path, events, sequential
    ):
        cut = len(events) // 2
        with make_pipeline(3, batch_events=16) as pipe:
            pipe.process(events[:cut])
            save_checkpoint(pipe, tmp_path / "base.rpk", position=cut)
            # The checkpoint fetch rebased every shard's recovery log.
            assert all(not log for log in pipe._log)
            victim = pipe._procs[0]
            victim.terminate()
            victim.join()
            pipe.process(events[cut:])
            assert pipe.snapshot() == sequential(3).snapshot()

    def test_permanent_failure_degrades_gracefully(self, events, sequential):
        with pytest.warns(RuntimeWarning, match="shard 1 failed permanently"):
            with make_pipeline(
                3,
                batch_events=32,
                fault=CrashShard(shard=1, fail_attempts=99),
                supervisor=SupervisorConfig(
                    timeout=20.0, max_attempts=2, backoff=0.01
                ),
            ) as pipe:
                pipe.process(list(events))
                partition = pipe.snapshot()
                assert pipe._failed[1] and pipe.shard_attempts[1] == 2
                assert pipe.dropped_events > 0
                # Losing a shard's sample can only remove merges.
                assert (
                    partition.num_clusters > sequential(3).snapshot().num_clusters
                )
                with pytest.raises(CheckpointError, match="degraded"):
                    pipe.get_state()


class TestLifecycle:
    def test_close_is_idempotent_and_blocks_ingestion(self, events):
        pipe = make_pipeline(2)
        pipe.process(events[:20])
        pipe.close()
        pipe.close()
        assert all(proc is None for proc in pipe._procs)
        with pytest.raises(RuntimeError, match="closed"):
            pipe.apply_many(events[:2])

    def test_progress_snapshot_is_barrier_free(self, events):
        with make_pipeline(2, batch_events=8) as pipe:
            pipe.apply_many(events[:60])
            # No merge cached yet: the report must not force a barrier.
            assert pipe.approx_num_clusters is None
            assert pipe.progress_snapshot() == {}
            clusters = pipe.num_clusters  # explicit barrier
            assert pipe.progress_snapshot() == {"clusters": clusters}

    def test_worker_metrics_shape(self, events):
        with make_pipeline(2, batch_events=8) as pipe:
            pipe.apply_many(events[:60])
            payloads = pipe.worker_metrics()
            assert len(payloads) == 2
            assert sum(p["events_applied"] for p in payloads) >= 60
            for payload in payloads:
                assert payload["busy_seconds"] >= 0.0
                assert payload["cpu_seconds"] > 0.0
                assert "admissions" in payload["stats"]
                assert "partition_builds" in payload["probes"]

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            PipelineClusterer(CONFIG, 0)
        with pytest.raises(ValueError):
            PipelineClusterer(CONFIG, 2, batch_events=0, start=False)

    def test_self_loop_rejected_at_routing(self):
        with make_pipeline(2) as pipe:
            with pytest.raises(ValueError, match="self-loop"):
                pipe.apply((EventKind.ADD_EDGE, 5, 5))


class TestCloseAccounting:
    """close() must not silently lose buffered events (drops + warning)."""

    def _edge_stream(self, n=60):
        graph = planted_partition(n, 3, p_in=0.4, p_out=0.02, seed=3)
        return [(EventKind.ADD_EDGE, u, v) for u, v in graph.edges]

    def test_close_accounts_buffer_stranded_on_degraded_shard(self):
        stream = self._edge_stream()
        with pytest.warns(RuntimeWarning, match="failed permanently"):
            pipe = make_pipeline(
                1,
                batch_events=8,
                fault=CrashShard(shard=0, fail_attempts=99),
                supervisor=SupervisorConfig(
                    timeout=20.0, max_attempts=2, backoff=0.01
                ),
            )
            try:
                # 21 events: two flushes hit the dead worker and degrade
                # the shard (their drops are counted at flush time); the
                # remaining tail is stranded in the producer buffer.
                pipe.apply_many(stream[:21])
                assert pipe._failed[0]
                stranded = len(pipe._buffers[0])
                assert stranded > 0
                before = pipe.dropped_events
                pipe.close()
            finally:
                pipe.close()
        assert pipe.dropped_events == before + stranded

    def test_close_counts_events_lost_on_broken_worker_pipe(self):
        stream = self._edge_stream()
        pipe = make_pipeline(1)  # default batch_events: nothing flushes
        try:
            pipe.apply_many(stream[:12])
            assert pipe.dropped_events == 0
            victim = pipe._procs[0]
            victim.kill()
            victim.join()
            with pytest.warns(RuntimeWarning, match="failed while flushing"):
                pipe.close()
            assert pipe.dropped_events == 12
        finally:
            pipe.close()
