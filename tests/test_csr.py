"""Unit tests for CSR snapshots and representation conversions."""

import numpy as np
import pytest

from repro.graph import (
    AdjacencyGraph,
    CSRGraph,
    adjacency_to_csr,
    csr_to_adjacency,
    events_to_edge_list,
    graph_from_events,
)
from repro.streams import add_edge, add_vertex, delete_edge, delete_vertex


class TestCSRGraph:
    def test_from_edges_shape(self):
        csr = CSRGraph.from_edges([(10, 20), (20, 30)])
        assert csr.num_vertices == 3
        assert csr.num_edges == 2
        assert csr.ids == [10, 20, 30]

    def test_neighbors_and_degrees(self):
        csr = CSRGraph.from_edges([(1, 2), (1, 3), (2, 3)])
        i1 = csr.index_of[1]
        assert csr.degree(i1) == 2
        assert sorted(csr.ids[j] for j in csr.neighbors(i1)) == [2, 3]
        assert list(csr.degrees()) == [2, 2, 2]

    def test_isolated_vertices_included(self):
        csr = CSRGraph.from_edges([(1, 2)], vertices=[1, 2, 99])
        assert csr.num_vertices == 3
        assert csr.degree(csr.index_of[99]) == 0

    def test_edges_iteration(self):
        csr = CSRGraph.from_edges([(1, 2), (2, 3)])
        pairs = sorted((csr.ids[u], csr.ids[v]) for u, v in csr.edges())
        assert pairs == [(1, 2), (2, 3)]

    def test_to_scipy_symmetric(self):
        csr = CSRGraph.from_edges([(0, 1), (1, 2)])
        matrix = csr.to_scipy()
        assert (matrix != matrix.T).nnz == 0
        assert matrix.sum() == 4  # 2 edges * 2 directions

    def test_invalid_arrays_rejected(self):
        with pytest.raises(ValueError):
            CSRGraph(np.zeros(3, dtype=np.int64), np.zeros(0, dtype=np.int64), [1])

    def test_string_ids(self):
        csr = CSRGraph.from_edges([("b", "a")])
        assert csr.ids == ["a", "b"]


class TestConversions:
    def test_adjacency_roundtrip(self):
        graph = AdjacencyGraph([(1, 2), (2, 3)])
        graph.add_vertex(9)
        back = csr_to_adjacency(adjacency_to_csr(graph))
        assert sorted(back.edges()) == sorted(graph.edges())
        assert back.has_vertex(9)

    def test_graph_from_events_replays_deletions(self):
        events = [
            add_edge(1, 2),
            add_edge(2, 3),
            delete_edge(1, 2),
            add_vertex(7),
            delete_vertex(3),
        ]
        graph = graph_from_events(events)
        assert graph.num_edges == 0
        assert sorted(graph.vertices()) == [1, 2, 7]

    def test_graph_from_events_idempotent_on_malformed(self):
        events = [add_edge(1, 2), add_edge(1, 2), delete_edge(5, 6)]
        graph = graph_from_events(events)
        assert graph.num_edges == 1

    def test_events_to_edge_list(self):
        events = [add_edge(1, 2), add_edge(3, 4), delete_edge(3, 4)]
        assert events_to_edge_list(events) == [(1, 2)]
