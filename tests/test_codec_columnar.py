"""Property and robustness tests for version-3 columnar frames.

The contract under test: for any endpoint columns, ``encode_columns``
(version 3) decodes to exactly the events the tuple path (version 2)
carries — same labels, same order — while sharing one cumulative vertex
table with interleaved v2 frames, and any byte surgery on a frame is
rejected with ``ValueError`` (``ProtocolError`` at the server).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.codec import (
    COLUMNAR_CODEC_VERSION,
    DeltaBatchDecoder,
    FrameEncoder,
)
from repro.streams.events import EventColumns, EventKind

# Labels the stream readers can actually produce: ints (including values
# outside the signed 64-bit range, which must take the generic entry
# path) and arbitrary unicode strings.
_labels = st.one_of(
    st.integers(),
    st.integers(min_value=1 << 64, max_value=1 << 80),
    st.text(max_size=12),
)

_pairs = st.lists(st.tuples(_labels, _labels), max_size=60)


def _decode_all(frames):
    decoder = DeltaBatchDecoder()
    events = []
    for frame in frames:
        assert frame[0] == COLUMNAR_CODEC_VERSION
        columns = decoder.decode(frame)
        assert type(columns) is EventColumns
        assert columns.kinds is None
        events.extend(columns.to_events())
    return events


class TestColumnarRoundTrip:
    @given(_pairs)
    @settings(max_examples=200, deadline=None)
    def test_columnar_decode_matches_tuple_decode(self, pairs):
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        frames = list(FrameEncoder().encode_columns(us, vs))
        expected = [(EventKind.ADD_EDGE, u, v) for u, v in pairs]
        assert _decode_all(frames) == expected

    @given(_pairs, st.integers(min_value=16, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_oversized_batches_split_without_loss(self, pairs, max_bytes):
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        frames = list(FrameEncoder().encode_columns(us, vs, max_bytes=max_bytes))
        expected = [(EventKind.ADD_EDGE, u, v) for u, v in pairs]
        assert _decode_all(frames) == expected
        # Only a frame holding a single event may exceed the cap (its
        # first-mention entries alone can be bigger than max_bytes).
        decoder = DeltaBatchDecoder()
        for frame in frames:
            decoded = decoder.decode(frame)
            if len(frame) > max_bytes:
                assert len(decoded) == 1

    @given(st.lists(st.tuples(st.integers(), st.integers()), max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_array_input_matches_list_input(self, pairs):
        in_range = [
            (u, v)
            for u, v in pairs
            if -(1 << 63) <= u < 1 << 63 and -(1 << 63) <= v < 1 << 63
        ]
        us = [u for u, _ in in_range]
        vs = [v for _, v in in_range]
        from_lists = list(FrameEncoder().encode_columns(us, vs))
        from_arrays = list(
            FrameEncoder().encode_columns(
                np.array(us, dtype=np.int64), np.array(vs, dtype=np.int64)
            )
        )
        assert from_lists == from_arrays

    def test_empty_batch_emits_nothing(self):
        assert list(FrameEncoder().encode_columns([], [])) == []

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ValueError, match="length"):
            list(FrameEncoder().encode_columns([1, 2], [3]))

    def test_v2_and_v3_share_one_table(self):
        # v3 frame introduces labels; the following v2 frame references
        # them by index (no re-mention), and vice versa.
        encoder = FrameEncoder()
        decoder = DeltaBatchDecoder()
        (frame3,) = encoder.encode_columns([1, 2], [2, 3])
        events = [(EventKind.DELETE_EDGE, 1, 2), (EventKind.ADD_EDGE, 3, 4)]
        frame2 = encoder.encode_batch(events)
        (frame3b,) = encoder.encode_columns([4, 1], [1, 4])
        got = decoder.decode(frame3).to_events()
        got += decoder.decode(frame2)
        got += decoder.decode(frame3b).to_events()
        assert got == [
            (EventKind.ADD_EDGE, 1, 2),
            (EventKind.ADD_EDGE, 2, 3),
            (EventKind.DELETE_EDGE, 1, 2),
            (EventKind.ADD_EDGE, 3, 4),
            (EventKind.ADD_EDGE, 4, 1),
            (EventKind.ADD_EDGE, 1, 4),
        ]
        assert decoder.table_size == encoder.table_size == 4

    def test_memoryview_decode_matches_bytes_decode(self):
        (frame,) = FrameEncoder().encode_columns([1, "x"], ["x", 1 << 70])
        from_bytes = DeltaBatchDecoder().decode(frame).to_events()
        from_view = DeltaBatchDecoder().decode(memoryview(frame)).to_events()
        assert from_bytes == from_view

    def test_int_fast_path_yields_array_columns(self):
        (frame,) = FrameEncoder().encode_columns([1, 2, 1], [2, 3, 3])
        columns = DeltaBatchDecoder().decode(frame)
        assert isinstance(columns.us, np.ndarray)
        assert columns.us.dtype == np.int64
        assert columns.to_events() == [
            (EventKind.ADD_EDGE, 1, 2),
            (EventKind.ADD_EDGE, 2, 3),
            (EventKind.ADD_EDGE, 1, 3),
        ]


class TestColumnarCorruption:
    def _frame(self):
        (frame,) = FrameEncoder().encode_columns([1, 2, 3], [2, 3, 4])
        return frame

    def test_truncated_frame_rejected(self):
        frame = self._frame()
        for cut in (1, 3, len(frame) // 2, len(frame) - 1):
            with pytest.raises(ValueError, match="corrupt event frame"):
                DeltaBatchDecoder().decode(frame[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ValueError, match="trailing"):
            DeltaBatchDecoder().decode(self._frame() + b"\x00")

    def test_unknown_flags_rejected(self):
        frame = bytearray(self._frame())
        frame[1] = 0x02
        with pytest.raises(ValueError, match="flags"):
            DeltaBatchDecoder().decode(bytes(frame))

    def test_out_of_range_vertex_index_rejected(self):
        frame = bytearray(self._frame())
        # The final u32 is the last v-index; point it past the table.
        struct.pack_into("<I", frame, len(frame) - 4, 1 << 20)
        with pytest.raises(ValueError, match="out of range"):
            DeltaBatchDecoder().decode(bytes(frame))

    def test_corrupt_entry_count_rejected(self):
        frame = bytearray(self._frame())
        struct.pack_into("<I", frame, 2, 1 << 16)  # table-entry count
        with pytest.raises(ValueError, match="corrupt event frame"):
            DeltaBatchDecoder().decode(bytes(frame))
