"""Property-based tests for the samplers' core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sampling import RandomPairingReservoir, ReservoirL, ReservoirR


@settings(max_examples=80, deadline=None)
@given(
    capacity=st.integers(1, 20),
    stream=st.lists(st.integers(0, 1000), min_size=0, max_size=200),
    seed=st.integers(0, 2**20),
)
def test_reservoir_r_invariants(capacity, stream, seed):
    r = ReservoirR(capacity, seed=seed)
    for item in stream:
        r.offer(item)
    assert len(r) == min(capacity, len(stream))
    assert r.stream_size == len(stream)
    assert all(item in stream for item in r.items)


@settings(max_examples=80, deadline=None)
@given(
    capacity=st.integers(1, 20),
    stream=st.lists(st.integers(0, 1000), min_size=0, max_size=200),
    seed=st.integers(0, 2**20),
)
def test_reservoir_l_invariants(capacity, stream, seed):
    r = ReservoirL(capacity, seed=seed)
    for item in stream:
        r.offer(item)
    assert len(r) == min(capacity, len(stream))
    assert r.stream_size == len(stream)
    assert all(item in stream for item in r.items)


# Random-pairing op sequences: insert fresh ids; delete ids currently live.
@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(1, 10),
    choices=st.lists(st.booleans(), min_size=1, max_size=150),
    seed=st.integers(0, 2**20),
)
def test_random_pairing_invariants(capacity, choices, seed):
    rp = RandomPairingReservoir(capacity, seed=seed)
    live: list = []
    next_id = 0
    deleted: set = set()
    for do_insert in choices:
        if do_insert or not live:
            rp.insert(next_id)
            live.append(next_id)
            next_id += 1
        else:
            victim = live.pop(len(live) // 2)
            rp.delete(victim)
            deleted.add(victim)
        # Invariants after every operation:
        assert rp.population == len(live)
        assert rp.sample_size <= rp.capacity
        assert rp.sample_size <= rp.population
        sample = rp.items()
        assert len(sample) == len(set(sample))  # no duplicates
        assert all(item not in deleted for item in sample)  # sample ⊆ live
        assert all(item in live for item in sample)


@settings(max_examples=50, deadline=None)
@given(
    capacity=st.integers(1, 8),
    n=st.integers(1, 60),
    seed=st.integers(0, 2**20),
)
def test_random_pairing_refills_after_total_deletion(capacity, n, seed):
    """Delete everything, then insert again: sample must recover.

    Random pairing may keep the sample *below* capacity while deletion
    debts are being paired away (each insertion settles one debt), so
    full recovery is only guaranteed after ``n`` (debts) + ``capacity``
    further insertions.
    """
    rp = RandomPairingReservoir(capacity, seed=seed)
    for x in range(n):
        rp.insert(x)
    for x in range(n):
        rp.delete(x)
    assert rp.sample_size == 0
    assert rp.population == 0
    assert rp.pending_deletions == n
    for x in range(n, 2 * n + capacity):
        rp.insert(x)
    assert rp.pending_deletions == 0
    assert rp.sample_size == capacity
