"""Unit tests for the reservoir samplers (R, L, random pairing, Bernoulli)."""

import random
from collections import Counter

import pytest

from repro.sampling import (
    BernoulliSampler,
    RandomPairingReservoir,
    ReservoirL,
    ReservoirR,
)


class TestReservoirR:
    def test_fills_to_capacity(self):
        r = ReservoirR(5, seed=0)
        for x in range(3):
            r.offer(x)
        assert sorted(r.items) == [0, 1, 2]
        for x in range(3, 100):
            r.offer(x)
        assert len(r) == 5
        assert r.stream_size == 100

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirR(0)

    def test_offer_return_contract(self):
        r = ReservoirR(1, seed=1)
        assert r.offer("a") is None  # admitted into spare capacity
        outcome = r.offer("b")
        assert outcome in ("a", "b")  # either evicted "a" or rejected "b"

    def test_uniformity(self):
        # Each of 40 items should be resident with probability 10/40.
        counts = Counter()
        runs = 3000
        for seed in range(runs):
            r = ReservoirR(10, seed=seed)
            for x in range(40):
                r.offer(x)
            counts.update(r.items)
        expected = runs * 10 / 40
        for x in range(40):
            assert abs(counts[x] - expected) < 5 * (expected**0.5)


class TestReservoirL:
    def test_equivalent_contract_to_r(self):
        r = ReservoirL(7, seed=0)
        for x in range(200):
            r.offer(x)
        assert len(r) == 7
        assert r.stream_size == 200
        assert all(0 <= x < 200 for x in r.items)

    def test_uniformity(self):
        counts = Counter()
        runs = 3000
        for seed in range(runs):
            r = ReservoirL(10, seed=seed)
            for x in range(40):
                r.offer(x)
            counts.update(r.items)
        expected = runs * 10 / 40
        for x in range(40):
            assert abs(counts[x] - expected) < 5 * (expected**0.5)

    def test_small_stream_keeps_everything(self):
        r = ReservoirL(10, seed=2)
        for x in range(6):
            r.offer(x)
        assert sorted(r.items) == list(range(6))


class TestRandomPairing:
    def test_insert_commit_cycle(self):
        rp = RandomPairingReservoir(3, seed=0)
        for x in range(3):
            proposal = rp.propose_insert(x)
            assert proposal.admit
            rp.commit(proposal)
        assert rp.sample_size == 3
        assert rp.population == 3

    def test_commit_non_admitting_raises(self):
        rp = RandomPairingReservoir(1, seed=0)
        rp.insert("a")
        # Force a rejection by inserting many items; find one.
        for x in range(100):
            proposal = rp.propose_insert(x)
            if not proposal.admit:
                with pytest.raises(ValueError):
                    rp.commit(proposal)
                return
            rp.commit(proposal)
        pytest.fail("never saw a rejection in 100 offers to a size-1 reservoir")

    def test_delete_from_sample_and_outside(self):
        rp = RandomPairingReservoir(2, seed=0)
        rp.insert("a")
        rp.insert("b")
        rp.insert("c")  # may or may not be in the sample
        inside = rp.items()[0]
        assert rp.delete(inside) is True
        assert rp.pending_deletions == 1
        outside = next(x for x in ("a", "b", "c") if not rp.contains(x) and x != inside)
        assert rp.delete(outside) is False
        assert rp.pending_deletions == 2
        assert rp.population == 1

    def test_delete_from_empty_population_raises(self):
        rp = RandomPairingReservoir(2, seed=0)
        with pytest.raises(ValueError):
            rp.delete("ghost")

    def test_pairing_compensates_bad_deletions(self):
        # With only bad (in-sample) uncompensated deletions, the next
        # insertion must be admitted without eviction.
        rp = RandomPairingReservoir(2, seed=0)
        rp.insert("a")
        rp.insert("b")
        rp.delete(rp.items()[0])
        proposal = rp.propose_insert("c")
        assert proposal.admit and proposal.evicted is None
        rp.commit(proposal)
        assert rp.sample_size == 2

    def test_pairing_skips_good_deletions(self):
        # With only good (out-of-sample) uncompensated deletions, the
        # next insertion must be skipped.
        rp = RandomPairingReservoir(1, seed=3)
        rp.insert("a")
        rp.insert("b")
        rp.insert("c")
        outside = [x for x in ("a", "b", "c") if not rp.contains(x)]
        rp.delete(outside[0])
        proposal = rp.propose_insert("d")
        assert not proposal.admit

    def test_abort_leaves_sample_untouched(self):
        rp = RandomPairingReservoir(2, seed=0)
        rp.insert("a")
        before = sorted(rp.items())
        proposal = rp.propose_insert("b")
        rp.abort(proposal)
        assert sorted(rp.items()) == before
        assert rp.population == 2  # population still counts the item

    def test_from_state_roundtrip(self):
        rp = RandomPairingReservoir(3, seed=5)
        for x in range(10):
            rp.insert(x)
        rp.delete(rp.items()[0])
        restored = RandomPairingReservoir.from_state(rp.get_state())
        assert restored.items() == rp.items()
        assert restored.population == rp.population
        assert restored.pending_deletions == rp.pending_deletions

    @pytest.fixture
    def sampler_state(self):
        rp = RandomPairingReservoir(3, seed=5)
        for x in range(10):
            rp.insert(x)
        return rp.get_state()

    def test_from_state_rejects_oversized_sample(self, sampler_state):
        sampler_state["items"] = list(range(sampler_state["capacity"] + 1))
        with pytest.raises(ValueError, match="exceed"):
            RandomPairingReservoir.from_state(sampler_state)

    def test_from_state_rejects_duplicate_items(self, sampler_state):
        sampler_state["items"] = ["a"] * len(sampler_state["items"])
        with pytest.raises(ValueError, match="duplicate"):
            RandomPairingReservoir.from_state(sampler_state)

    @pytest.mark.parametrize("field", ["population", "c_bad", "c_good"])
    def test_from_state_rejects_negative_counters(self, sampler_state, field):
        sampler_state[field] = -1
        with pytest.raises(ValueError, match=f"negative {field}"):
            RandomPairingReservoir.from_state(sampler_state)

    def test_uniform_over_surviving_population(self):
        # Insert 30, delete 10 specific ones, insert 10 more; every one
        # of the 30 survivors should be sampled equally often.
        counts = Counter()
        runs = 4000
        for seed in range(runs):
            rp = RandomPairingReservoir(6, seed=seed)
            for x in range(30):
                rp.insert(x)
            for x in range(10):
                rp.delete(x)
            for x in range(30, 40):
                rp.insert(x)
            counts.update(rp.items())
        survivors = list(range(10, 40))
        expected = runs * 6 / len(survivors)
        for x in survivors:
            assert abs(counts[x] - expected) < 5 * (expected**0.5), x
        assert all(counts[x] == 0 for x in range(10))


class TestBernoulli:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            BernoulliSampler(1.5)

    def test_p_zero_and_one(self):
        none = BernoulliSampler(0.0, seed=0)
        every = BernoulliSampler(1.0, seed=0)
        for x in range(50):
            none.insert(x)
            every.insert(x)
        assert none.sample_size == 0
        assert every.sample_size == 50

    def test_sample_rate_concentrates(self):
        sampler = BernoulliSampler(0.2, seed=7)
        for x in range(5000):
            sampler.insert(x)
        assert 800 <= sampler.sample_size <= 1200

    def test_delete_tracks_membership(self):
        sampler = BernoulliSampler(0.5, seed=1)
        kept = [x for x in range(100) if sampler.insert(x)]
        assert sampler.delete(kept[0]) is True
        missing = next(x for x in range(100) if x not in sampler and x != kept[0])
        assert sampler.delete(missing) is False
        assert sampler.population == 98

    def test_delete_empty_population_raises(self):
        with pytest.raises(ValueError):
            BernoulliSampler(0.5).delete("x")
