"""Unit tests for the offline baseline algorithms."""

import pytest

from repro.baselines import (
    BASELINES,
    PeriodicRecomputeClusterer,
    connected_components,
    label_propagation,
    louvain,
    make_multilevel,
    make_spectral,
    mcl,
    multilevel_partition,
    sampled_components,
    spectral_clustering,
)
from repro.graph import AdjacencyGraph
from repro.quality import Partition, modularity, nmi
from repro.streams import add_edge, delete_edge


class TestLouvain:
    def test_separated_triangles(self):
        graph = AdjacencyGraph([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        partition = louvain(graph, seed=0)
        assert partition.same_cluster(0, 2)
        assert not partition.same_cluster(0, 3)

    def test_karate_modularity(self, karate_graph):
        graph, _ = karate_graph
        partition = louvain(graph, seed=1)
        assert modularity(graph, partition) > 0.35

    def test_recovers_planted_structure(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = louvain(graph, seed=2)
        assert nmi(partition, sbm_small.truth) > 0.9

    def test_covers_isolated_vertices(self):
        graph = AdjacencyGraph([(1, 2)])
        graph.add_vertex(99)
        partition = louvain(graph)
        assert 99 in partition

    def test_empty_graph(self):
        assert louvain(AdjacencyGraph()).num_clusters == 0

    def test_deterministic_per_seed(self, karate_graph):
        graph, _ = karate_graph
        assert louvain(graph, seed=5) == louvain(graph, seed=5)


class TestLabelPropagation:
    def test_separated_cliques(self, barbell_graph):
        graph, _ = barbell_graph
        partition = label_propagation(graph, seed=0)
        assert partition.same_cluster(0, 4)  # inside the left clique

    def test_recovers_planted_structure(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = label_propagation(graph, seed=1)
        assert nmi(partition, sbm_small.truth) > 0.8

    def test_isolated_vertices_keep_own_label(self):
        graph = AdjacencyGraph([(1, 2)])
        graph.add_vertex(9)
        partition = label_propagation(graph)
        assert partition.members(partition.label_of(9)) == {9}


class TestSpectral:
    def test_two_triangles_split(self, triangle_graph):
        graph, truth = triangle_graph
        partition = spectral_clustering(graph, 2, seed=0)
        assert partition == truth

    def test_recovers_planted_structure(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = spectral_clustering(graph, 4, seed=1)
        assert nmi(partition, sbm_small.truth) > 0.9

    def test_isolated_vertices_singletons(self):
        graph = AdjacencyGraph([(1, 2), (2, 3)])
        graph.add_vertex(50)
        partition = spectral_clustering(graph, 2, seed=0)
        assert partition.members(partition.label_of(50)) == {50}

    def test_k_validation(self, triangle_graph):
        graph, _ = triangle_graph
        with pytest.raises(ValueError):
            spectral_clustering(graph, 0)

    def test_tiny_graph_dense_path(self):
        graph = AdjacencyGraph([(1, 2), (2, 3)])
        partition = spectral_clustering(graph, 2, seed=0)
        assert partition.num_vertices == 3


class TestMultilevel:
    def test_produces_k_parts(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = multilevel_partition(graph, 4, seed=0)
        assert partition.num_clusters == 4

    def test_balance(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = multilevel_partition(graph, 4, seed=0, imbalance=1.1)
        assert partition.max_cluster_size <= 1.1 * 200 / 4 + 1

    def test_cuts_align_with_communities(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = multilevel_partition(graph, 4, seed=0)
        assert nmi(partition, sbm_small.truth) > 0.7

    def test_k_greater_than_n(self):
        graph = AdjacencyGraph([(1, 2)])
        partition = multilevel_partition(graph, 10)
        assert partition.num_clusters == 2  # singletons

    def test_empty_graph(self):
        assert multilevel_partition(AdjacencyGraph(), 3).num_clusters == 0

    def test_imbalance_validation(self, triangle_graph):
        graph, _ = triangle_graph
        with pytest.raises(ValueError):
            multilevel_partition(graph, 2, imbalance=0.5)


class TestMCL:
    def test_two_triangles_split(self, triangle_graph):
        graph, truth = triangle_graph
        partition = mcl(graph)
        assert partition == truth

    def test_recovers_planted_structure(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = mcl(graph)
        assert nmi(partition, sbm_small.truth) > 0.85

    def test_higher_inflation_more_clusters(self, karate_graph):
        graph, _ = karate_graph
        coarse = mcl(graph, inflation=1.4)
        fine = mcl(graph, inflation=3.0)
        assert fine.num_clusters >= coarse.num_clusters

    def test_empty_graph(self):
        assert mcl(AdjacencyGraph()).num_clusters == 0

    def test_validation(self, triangle_graph):
        graph, _ = triangle_graph
        with pytest.raises(ValueError):
            mcl(graph, inflation=1.0)
        with pytest.raises(ValueError):
            mcl(graph, expansion=1)


class TestComponents:
    def test_connected_components(self):
        graph = AdjacencyGraph([(1, 2), (3, 4)])
        graph.add_vertex(9)
        partition = connected_components(graph)
        assert partition.num_clusters == 3

    def test_sampled_components_with_full_budget(self, triangle_graph):
        graph, _ = triangle_graph
        partition = sampled_components(graph, sample_size=100, seed=0)
        assert partition == connected_components(graph)

    def test_sampled_components_partial(self, sbm_small):
        graph = AdjacencyGraph(sbm_small.edges)
        partition = sampled_components(graph, sample_size=50, seed=0)
        assert partition.num_clusters > 4  # heavily under-sampled → fragments
        assert partition.num_vertices == graph.num_vertices


class TestRecompute:
    def test_recomputes_on_interval(self):
        wrapper = PeriodicRecomputeClusterer(connected_components, interval=3)
        for i in range(7):
            wrapper.apply(add_edge(i, i + 1))
        assert wrapper.recomputations == 2
        assert wrapper.events == 7

    def test_stale_between_recomputes(self):
        wrapper = PeriodicRecomputeClusterer(connected_components, interval=10)
        wrapper.apply(add_edge(1, 2))
        assert wrapper.same_cluster(1, 2)  # forced first snapshot
        wrapper.apply(delete_edge(1, 2))
        assert wrapper.same_cluster(1, 2)  # stale view
        wrapper.recompute()
        assert not wrapper.same_cluster(1, 2)

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            PeriodicRecomputeClusterer(connected_components, interval=0)

    def test_factories(self, triangle_graph):
        graph, truth = triangle_graph
        assert make_spectral(2, seed=0)(graph) == truth
        assert make_multilevel(2, seed=0)(graph).num_clusters == 2

    def test_baseline_registry(self, triangle_graph):
        graph, _ = triangle_graph
        for name, algorithm in BASELINES.items():
            partition = algorithm(graph)
            assert isinstance(partition, Partition), name
            assert partition.num_vertices == graph.num_vertices, name
