"""Property-based tests: dynamic connectivity vs. a trivial oracle.

Hypothesis drives random insert/delete sequences and checks HDT and the
naive structure against recomputing components from scratch.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.connectivity import HDTConnectivity, NaiveDynamicConnectivity
from repro.graph import AdjacencyGraph

# An operation is (vertex_a, vertex_b); interpretation depends on current
# state: insert if the edge is absent, delete if present.
_ops = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=120,
)


def _components_oracle(edges: set, vertices: set) -> List[Tuple[int, ...]]:
    g = AdjacencyGraph()
    for v in vertices:
        g.add_vertex(v)
    for u, v in edges:
        g.add_edge(u, v)
    return sorted(tuple(sorted(c)) for c in g.connected_components())


@settings(max_examples=60, deadline=None)
@given(ops=_ops, backend_seed=st.integers(0, 2**20))
def test_hdt_matches_recomputed_components(ops, backend_seed):
    conn = HDTConnectivity(seed=backend_seed)
    edges: set = set()
    vertices: set = set()
    for a, b in ops:
        e = (min(a, b), max(a, b))
        vertices.update(e)
        if e in edges:
            conn.delete_edge(*e)
            edges.discard(e)
        else:
            conn.insert_edge(*e)
            edges.add(e)
        expected = _components_oracle(edges, vertices)
        actual = sorted(tuple(sorted(c)) for c in conn.components())
        assert actual == expected


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_naive_matches_recomputed_components(ops):
    conn = NaiveDynamicConnectivity()
    edges: set = set()
    vertices: set = set()
    for a, b in ops:
        e = (min(a, b), max(a, b))
        vertices.update(e)
        if e in edges:
            conn.delete_edge(*e)
            edges.discard(e)
        else:
            conn.insert_edge(*e)
            edges.add(e)
    assert (
        sorted(tuple(sorted(c)) for c in conn.components())
        == _components_oracle(edges, vertices)
    )


@settings(max_examples=40, deadline=None)
@given(ops=_ops, seed=st.integers(0, 2**20))
def test_split_and_merge_return_values_agree(ops, seed):
    """HDT and naive must agree on *whether* each op merged/split."""
    hdt = HDTConnectivity(seed=seed)
    naive = NaiveDynamicConnectivity()
    edges: set = set()
    for a, b in ops:
        e = (min(a, b), max(a, b))
        if e in edges:
            assert hdt.delete_edge(*e) == naive.delete_edge(*e)
            edges.discard(e)
        else:
            assert hdt.insert_edge(*e) == naive.insert_edge(*e)
            edges.add(e)
        assert hdt.num_components == naive.num_components
