"""End-to-end tests for the command-line interface."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

SRC = str(Path(__file__).resolve().parents[1] / "src")


def run_cli(*argv):
    env = dict(os.environ, PYTHONPATH=SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *map(str, argv)],
        capture_output=True, text=True, env=env,
    )


@pytest.fixture
def workload(tmp_path):
    edges = tmp_path / "graph.edges"
    truth = tmp_path / "truth.labels"
    code = main([
        "generate", "--sbm", "120", "4", "0.3", "0.002",
        "--seed", "5", "--out", str(edges), "--truth-out", str(truth),
    ])
    assert code == 0
    return edges, truth


class TestGenerate:
    def test_sbm_files_written(self, workload):
        edges, truth = workload
        assert edges.exists() and truth.exists()
        assert len(edges.read_text().splitlines()) > 100
        assert len(truth.read_text().splitlines()) == 120

    def test_lfr(self, tmp_path):
        out = tmp_path / "lfr.edges"
        assert main(["generate", "--lfr", "300", "0.1", "--out", str(out)]) == 0
        assert out.exists()

    def test_rmat_has_no_truth(self, tmp_path, capsys):
        out = tmp_path / "rmat.edges"
        truth = tmp_path / "rmat.labels"
        code = main([
            "generate", "--rmat", "7", "300",
            "--out", str(out), "--truth-out", str(truth),
        ])
        assert code == 0
        assert not truth.exists()
        assert "no ground truth" in capsys.readouterr().err

    def test_dataset(self, tmp_path):
        out = tmp_path / "karate.edges"
        assert main(["generate", "--dataset", "karate", "--out", str(out)]) == 0
        assert len(out.read_text().splitlines()) == 78


class TestCluster:
    def test_cluster_writes_labels(self, workload, tmp_path, capsys):
        edges, _ = workload
        labels = tmp_path / "found.labels"
        code = main([
            "cluster", str(edges), "--capacity", "2000",
            "--max-cluster-size", "40", "--out", str(labels), "--seed", "5",
        ])
        assert code == 0
        lines = labels.read_text().splitlines()
        assert len(lines) == 120
        assert "clusters" in capsys.readouterr().err

    def test_cluster_to_stdout(self, workload, capsys):
        edges, _ = workload
        assert main(["cluster", str(edges), "--capacity", "50"]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) == 120

    def test_event_stream_input(self, tmp_path):
        stream = tmp_path / "stream.events"
        stream.write_text("+ 1 2\n+ 2 3\n- 1 2\n")
        labels = tmp_path / "labels"
        code = main([
            "cluster", str(stream), "--events",
            "--capacity", "10", "--out", str(labels),
        ])
        assert code == 0
        assert len(labels.read_text().splitlines()) == 3

    def test_lean_and_backend_flags(self, workload, tmp_path):
        edges, _ = workload
        labels = tmp_path / "lean.labels"
        code = main([
            "cluster", str(edges), "--capacity", "100",
            "--lean", "--backend", "lazy", "--out", str(labels),
        ])
        assert code == 0

    def test_min_size_folding(self, workload, tmp_path):
        edges, _ = workload
        a, b = tmp_path / "a", tmp_path / "b"
        main(["cluster", str(edges), "--capacity", "200", "--out", str(a), "--seed", "1"])
        main(["cluster", str(edges), "--capacity", "200", "--out", str(b),
              "--seed", "1", "--min-size", "5"])
        labels_a = {line.split("\t")[1] for line in a.read_text().splitlines()}
        labels_b = {line.split("\t")[1] for line in b.read_text().splitlines()}
        assert len(labels_b) <= len(labels_a)

    @pytest.mark.parametrize("flag,value", [
        ("--batch-size", "0"),
        ("--batch-size", "-1"),
        ("--workers", "0"),
    ])
    def test_nonpositive_sizes_rejected(self, workload, flag, value):
        edges, _ = workload
        result = run_cli(
            "cluster", str(edges), "--capacity", "100", flag, value,
        )
        assert result.returncode == 2
        assert "must be >= 1" in result.stderr

    def test_scalar_kernel_is_the_default(self, workload, tmp_path):
        # `--kernel scalar` must be byte-identical to not passing the
        # flag at all: the numpy kernel is strictly opt-in.
        edges, _ = workload
        default, explicit = tmp_path / "default", tmp_path / "explicit"
        args = ["cluster", str(edges), "--capacity", "200", "--seed", "5"]
        assert main([*args, "--out", str(default)]) == 0
        assert main([*args, "--kernel", "scalar", "--out", str(explicit)]) == 0
        assert default.read_bytes() == explicit.read_bytes()

    def test_numpy_kernel_deterministic_labels(self, workload, tmp_path,
                                               capsys):
        edges, _ = workload
        a, b = tmp_path / "a", tmp_path / "b"
        args = [
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--kernel", "numpy", "--batch-size", "512",
        ]
        assert main([*args, "--out", str(a)]) == 0
        assert "clusters" in capsys.readouterr().err
        assert main([*args, "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_kernel_mismatch_on_resume_refused(self, workload, tmp_path,
                                               capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        assert main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--kernel", "numpy", "--checkpoint", str(ckpt),
        ]) == 0
        capsys.readouterr()
        code = main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--checkpoint", str(ckpt), "--resume",
        ])
        assert code == 2
        assert "--kernel" in capsys.readouterr().err

    def test_numpy_checkpoint_resume_is_identical(self, workload, tmp_path,
                                                  capsys):
        edges, _ = workload
        full = tmp_path / "full.labels"
        args = [
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--kernel", "numpy",
        ]
        assert main([*args, "--out", str(full)]) == 0
        ckpt = tmp_path / "run.ckpt"
        assert main([*args, "--checkpoint", str(ckpt)]) == 0
        capsys.readouterr()
        resumed = tmp_path / "resumed.labels"
        assert main([*args, "--out", str(resumed), "--checkpoint", str(ckpt),
                     "--resume"]) == 0
        assert "resumed from" in capsys.readouterr().err
        assert resumed.read_text() == full.read_text()


class TestParallelModes:
    def test_all_modes_produce_identical_labels(self, workload, tmp_path):
        edges, _ = workload
        outputs = {}
        for mode in ("inline", "pipeline", "pool"):
            out = tmp_path / f"{mode}.labels"
            code = main([
                "cluster", str(edges), "--capacity", "200", "--seed", "5",
                "--parallel", mode, "--workers", "3", "--out", str(out),
            ])
            assert code == 0
            outputs[mode] = out.read_text()
        assert outputs["inline"] == outputs["pipeline"] == outputs["pool"]

    def test_sharded_summary_line(self, workload, capsys):
        edges, _ = workload
        code = main([
            "cluster", str(edges), "--capacity", "100",
            "--parallel", "inline", "--workers", "2",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "across 2 shards" in err and "reservoir" in err

    def test_pipeline_checkpoint_kill_and_resume(self, workload, tmp_path):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        reference = tmp_path / "ref.labels"
        args = ["cluster", edges, "--capacity", "300", "--seed", "5",
                "--parallel", "pipeline", "--workers", "3"]
        assert run_cli(*args, "--out", reference).returncode == 0

        crashed = run_cli(*args, "--checkpoint", ckpt, "--checkpoint-every",
                          "100", "--inject-kill-after", "350")
        assert crashed.returncode == 3
        assert ckpt.exists()

        resumed = tmp_path / "resumed.labels"
        done = run_cli(*args, "--checkpoint", ckpt, "--resume",
                       "--out", resumed)
        assert done.returncode == 0
        assert "resumed from" in done.stderr
        assert resumed.read_text() == reference.read_text()

    def test_pipeline_checkpoint_resumes_inline_and_vice_versa(
        self, workload, tmp_path
    ):
        # The checkpoint format is shared: a pipeline checkpoint resumes
        # under --parallel inline (and the labels stay identical).
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        reference = tmp_path / "ref.labels"
        base = ["cluster", edges, "--capacity", "300", "--seed", "5",
                "--workers", "3"]
        assert run_cli(*base, "--parallel", "inline",
                       "--out", reference).returncode == 0
        crashed = run_cli(*base, "--parallel", "pipeline", "--checkpoint",
                          ckpt, "--checkpoint-every", "100",
                          "--inject-kill-after", "250")
        assert crashed.returncode == 3
        resumed = tmp_path / "resumed.labels"
        done = run_cli(*base, "--parallel", "inline", "--checkpoint", ckpt,
                       "--resume", "--out", resumed)
        assert done.returncode == 0
        assert resumed.read_text() == reference.read_text()

    def test_workers_mismatch_on_resume_refused(self, workload, tmp_path,
                                                capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        assert main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--parallel", "pipeline", "--workers", "3",
            "--checkpoint", str(ckpt),
        ]) == 0
        capsys.readouterr()
        code = main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--parallel", "pipeline", "--workers", "2",
            "--checkpoint", str(ckpt), "--resume",
        ])
        assert code == 2
        assert "--workers" in capsys.readouterr().err

    def test_sharded_checkpoint_without_parallel_refused(self, workload,
                                                         tmp_path, capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        assert main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--parallel", "inline", "--workers", "2",
            "--checkpoint", str(ckpt),
        ]) == 0
        capsys.readouterr()
        code = main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--checkpoint", str(ckpt), "--resume",
        ])
        assert code == 2
        assert "--parallel" in capsys.readouterr().err

    def test_pool_with_checkpoint_refused(self, workload, tmp_path, capsys):
        edges, _ = workload
        code = main([
            "cluster", str(edges), "--capacity", "200",
            "--parallel", "pool", "--checkpoint", str(tmp_path / "x.ckpt"),
        ])
        assert code == 2
        assert "pool" in capsys.readouterr().err

    def test_pipeline_metrics_snapshot(self, workload, tmp_path, capsys):
        import json

        edges, _ = workload
        metrics = tmp_path / "metrics.json"
        code = main([
            "cluster", str(edges), "--capacity", "200", "--seed", "5",
            "--parallel", "pipeline", "--workers", "2",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        capsys.readouterr()
        snapshot = json.loads(metrics.read_text())
        assert snapshot["pipeline.frames_sent"]["value"] >= 1
        assert snapshot["clusterer.events"]["value"] > 0


class TestScore:
    def test_full_scoring(self, workload, tmp_path, capsys):
        edges, truth = workload
        labels = tmp_path / "found.labels"
        main([
            "cluster", str(edges), "--capacity", "2000",
            "--max-cluster-size", "40", "--out", str(labels), "--seed", "5",
        ])
        capsys.readouterr()
        code = main([
            "score", str(labels), "--graph", str(edges), "--truth", str(truth),
        ])
        assert code == 0
        output = capsys.readouterr().out
        for metric in ("modularity", "avg_conductance", "nmi", "ari", "pairwise_f1"):
            assert metric in output

    def test_perfect_score_against_itself(self, workload, capsys):
        _, truth = workload
        assert main(["score", str(truth), "--truth", str(truth)]) == 0
        output = capsys.readouterr().out
        assert "nmi: 1.0000" in output
        assert "ari: 1.0000" in output

    def test_malformed_labels_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.labels"
        bad.write_text("1 2 3\n")
        assert main(["score", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "expected" in err
        assert "Traceback" not in err


class TestErrorHandling:
    def test_malformed_edge_list_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.edges"
        bad.write_text("1 2\njunk\n")
        assert main(["cluster", str(bad), "--capacity", "10"]) == 2
        err = capsys.readouterr().err
        assert "bad.edges:2" in err and "Traceback" not in err

    def test_skip_malformed_tolerates_bad_lines(self, tmp_path, capsys):
        bad = tmp_path / "bad.edges"
        bad.write_text("1 2\njunk\n2 3\n")
        labels = tmp_path / "out.labels"
        code = main([
            "cluster", str(bad), "--capacity", "10",
            "--skip-malformed", "--out", str(labels),
        ])
        assert code == 0
        assert "skipped 1 malformed" in capsys.readouterr().err
        assert len(labels.read_text().splitlines()) == 3

    def test_malformed_event_stream_exit_nonzero(self, tmp_path, capsys):
        stream = tmp_path / "s.events"
        stream.write_text("+ 1 2\n* nonsense\n")
        assert main(["cluster", str(stream), "--events", "--capacity", "10"]) == 2
        assert "s.events:2" in capsys.readouterr().err

    def test_skip_malformed_count_on_batched_event_path(self, tmp_path, capsys):
        # The default batch size routes --events input through the raw
        # reader; the skipped-line count must still be exact.
        stream = tmp_path / "s.events"
        stream.write_text("+ 1 2\n* nonsense\n+ 2 3\n+ 4 4\n+ 3 4\n")
        labels = tmp_path / "out.labels"
        code = main([
            "cluster", str(stream), "--events", "--capacity", "10",
            "--skip-malformed", "--out", str(labels),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "skipped 2 malformed input lines" in err  # bad op + self-loop
        assert len(labels.read_text().splitlines()) == 4

    def test_broken_pipe_exits_cleanly(self, workload, monkeypatch):
        # `repro cluster ... | head` closes stdout early; the CLI must
        # treat that as a normal end of the run, not a traceback.
        edges, _ = workload

        class ClosedPipe:
            def write(self, text):
                raise BrokenPipeError(32, "Broken pipe")

            def flush(self):
                raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(sys, "stdout", ClosedPipe())
        assert main(["cluster", str(edges), "--capacity", "50"]) == 0


class TestObservability:
    def test_metrics_out_writes_snapshot(self, workload, tmp_path, capsys):
        import json

        edges, _ = workload
        metrics = tmp_path / "metrics.json"
        ckpt = tmp_path / "run.ckpt"
        code = main([
            "cluster", str(edges), "--capacity", "500", "--seed", "5",
            "--checkpoint", str(ckpt), "--checkpoint-every", "100",
            "--metrics-out", str(metrics), "--out", str(tmp_path / "labels"),
        ])
        assert code == 0
        assert "metrics written to" in capsys.readouterr().err
        snapshot = json.loads(metrics.read_text())
        events = snapshot["clusterer.events"]
        assert events["kind"] == "counter" and events["value"] > 100
        assert snapshot["clusterer.reservoir_size"]["value"] <= 500
        assert snapshot["checkpoint.saves"]["value"] >= 2
        assert snapshot["checkpoint.save_seconds"]["kind"] == "histogram"
        assert (
            snapshot["checkpoint.save_seconds"]["count"]
            == snapshot["checkpoint.saves"]["value"]
        )

    def test_progress_every_reports_to_stderr(self, workload, capsys):
        edges, _ = workload
        code = main([
            "cluster", str(edges), "--capacity", "100", "--seed", "5",
            "--progress-every", "200", "--out", os.devnull,
        ])
        assert code == 0
        progress = [line for line in capsys.readouterr().err.splitlines()
                    if line.startswith("progress:")]
        assert len(progress) >= 2
        assert "ev/s" in progress[0] and "reservoir" in progress[0]
        assert "clusters" in progress[0]

    def test_metrics_flag_does_not_leak_into_later_runs(self, workload,
                                                        tmp_path):
        from repro import obs

        edges, _ = workload
        metrics = tmp_path / "metrics.json"
        assert main([
            "cluster", str(edges), "--capacity", "100",
            "--metrics-out", str(metrics), "--out", os.devnull,
        ]) == 0
        assert not obs.is_enabled()


class TestCheckpointResume:
    def test_checkpoint_written_and_resume_is_identical(self, workload, tmp_path,
                                                        capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        full = tmp_path / "full.labels"
        args = ["cluster", str(edges), "--capacity", "500", "--seed", "5"]
        assert main([*args, "--out", str(full)]) == 0
        # Same run with checkpointing enabled: same labels, checkpoint on disk.
        ck_out = tmp_path / "ck.labels"
        assert main([*args, "--out", str(ck_out), "--checkpoint", str(ckpt),
                     "--checkpoint-every", "100"]) == 0
        assert ckpt.exists()
        assert ck_out.read_text() == full.read_text()
        # Resuming from the final checkpoint replays an empty tail.
        resumed = tmp_path / "resumed.labels"
        assert main([*args, "--out", str(resumed), "--checkpoint", str(ckpt),
                     "--resume"]) == 0
        assert "resumed from" in capsys.readouterr().err
        assert resumed.read_text() == full.read_text()

    def test_corrupted_checkpoint_is_refused(self, workload, tmp_path, capsys):
        from repro.util.faults import corrupt_checkpoint

        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        args = ["cluster", str(edges), "--capacity", "200", "--seed", "5"]
        assert main([*args, "--checkpoint", str(ckpt), "--out",
                     str(tmp_path / "a")]) == 0
        capsys.readouterr()
        corrupt_checkpoint(ckpt)
        code = main([*args, "--checkpoint", str(ckpt), "--resume",
                     "--out", str(tmp_path / "b")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "checksum" in err

    def test_resume_with_conflicting_flags_is_refused(self, workload, tmp_path,
                                                      capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        base = ["cluster", str(edges), "--seed", "5", "--checkpoint", str(ckpt)]
        assert main([*base, "--capacity", "500", "--out",
                     str(tmp_path / "a")]) == 0
        capsys.readouterr()
        code = main([*base, "--capacity", "600", "--seed", "7", "--resume",
                     "--out", str(tmp_path / "b")])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err
        assert "--capacity" in err and "500" in err and "600" in err
        assert "--seed" in err and "--backend" not in err
        assert not (tmp_path / "b").exists()  # refused before any work

    def test_resume_with_matching_flags_is_accepted(self, workload, tmp_path,
                                                    capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        base = ["cluster", str(edges), "--capacity", "500", "--seed", "5",
                "--checkpoint", str(ckpt)]
        assert main([*base, "--out", str(tmp_path / "a")]) == 0
        assert main([*base, "--resume", "--out", str(tmp_path / "b")]) == 0
        assert "resumed from" in capsys.readouterr().err

    def test_resume_refuses_constraint_mismatch(self, workload, tmp_path,
                                                capsys):
        edges, _ = workload
        ckpt = tmp_path / "run.ckpt"
        base = ["cluster", str(edges), "--capacity", "500", "--seed", "5",
                "--checkpoint", str(ckpt)]
        assert main([*base, "--out", str(tmp_path / "a")]) == 0
        capsys.readouterr()
        code = main([*base, "--max-cluster-size", "40", "--resume",
                     "--out", str(tmp_path / "b")])
        assert code == 2
        assert "--max-cluster-size" in capsys.readouterr().err

    def test_kill_and_resume_subprocess(self, workload, tmp_path):
        """Hard-kill a CLI run mid-stream (os._exit), then resume from the
        checkpoint: the labels must score identically to an uninterrupted
        run. This is the crash-recovery path CI smokes as well."""
        edges, truth = workload
        ckpt = tmp_path / "run.ckpt"
        full = tmp_path / "full.labels"
        args = ["cluster", edges, "--capacity", "500", "--seed", "5"]
        assert run_cli(*args, "--out", full).returncode == 0

        crashed = run_cli(*args, "--checkpoint", ckpt, "--checkpoint-every", "100",
                          "--inject-kill-after", "450")
        assert crashed.returncode == 3  # the injected hard exit
        assert ckpt.exists()

        resumed = tmp_path / "resumed.labels"
        done = run_cli(*args, "--checkpoint", ckpt, "--resume", "--out", resumed)
        assert done.returncode == 0
        assert "resumed from" in done.stderr and "at event 400" in done.stderr

        score = run_cli("score", resumed, "--truth", full)
        assert score.returncode == 0
        assert "nmi: 1.0000" in score.stdout
        assert "ari: 1.0000" in score.stdout


class TestInterrupt:
    """Ctrl-C must exit 130 (128 + SIGINT) without a traceback."""

    def _interrupt(self, *extra, warmup=1.5):
        env = dict(os.environ, PYTHONPATH=SRC)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "cluster", "/dev/stdin",
                "--capacity", "100", *map(str, extra),
            ],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            # Feed a few edges but keep stdin open so the run blocks
            # mid-stream when the signal lands.
            proc.stdin.write("1 2\n2 3\n3 4\n")
            proc.stdin.flush()
            time.sleep(warmup)
            proc.send_signal(signal.SIGINT)
            _, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
        return proc.returncode, err

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigint_exits_130(self):
        code, err = self._interrupt()
        assert code == 130, err
        assert "interrupted" in err
        assert "Traceback" not in err

    @pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
    def test_sigint_reaps_pipeline_workers(self):
        # The KeyboardInterrupt path still runs the finally block that
        # closes the worker pool, so the process exits promptly instead
        # of hanging on orphaned children.
        code, err = self._interrupt(
            "--parallel", "pipeline", "--workers", "2", warmup=4.0
        )
        assert code == 130, err
        assert "Traceback" not in err
