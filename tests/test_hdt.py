"""Unit tests for HDT fully-dynamic connectivity."""

import random

import pytest

from repro.connectivity import HDTConnectivity, NaiveDynamicConnectivity


@pytest.fixture(params=["hdt", "naive"])
def conn(request):
    """Run the shared interface tests against both implementations."""
    if request.param == "hdt":
        return HDTConnectivity(seed=1)
    return NaiveDynamicConnectivity()


class TestInterface:
    def test_insert_merges(self, conn):
        assert conn.insert_edge(1, 2)
        assert conn.connected(1, 2)
        assert conn.num_components == 1

    def test_insert_within_component(self, conn):
        conn.insert_edge(1, 2)
        conn.insert_edge(2, 3)
        assert not conn.insert_edge(1, 3)  # cycle edge: no merge
        assert conn.num_components == 1

    def test_duplicate_insert_raises(self, conn):
        conn.insert_edge(1, 2)
        with pytest.raises(ValueError):
            conn.insert_edge(2, 1)

    def test_delete_tree_edge_with_replacement(self, conn):
        conn.insert_edge(1, 2)
        conn.insert_edge(2, 3)
        conn.insert_edge(1, 3)
        assert not conn.delete_edge(1, 2)  # replacement exists
        assert conn.connected(1, 2)

    def test_delete_splits(self, conn):
        conn.insert_edge(1, 2)
        conn.insert_edge(2, 3)
        assert conn.delete_edge(1, 2)
        assert not conn.connected(1, 2)
        assert conn.num_components == 2

    def test_delete_absent_raises(self, conn):
        conn.insert_edge(1, 2)
        with pytest.raises(KeyError):
            conn.delete_edge(1, 3)

    def test_vertex_registration(self, conn):
        assert conn.add_vertex(7)
        assert not conn.add_vertex(7)
        assert conn.num_components == 1
        assert conn.component_size(7) == 1

    def test_unknown_vertices(self, conn):
        assert conn.connected("a", "a")
        assert not conn.connected("a", "b")
        assert conn.component_size("a") == 1
        assert conn.component_members("a") == {"a"}

    def test_components_listing(self, conn):
        conn.insert_edge(1, 2)
        conn.insert_edge(3, 4)
        conn.add_vertex(5)
        components = sorted(map(sorted, conn.components()))
        assert components == [[1, 2], [3, 4], [5]]

    def test_has_edge(self, conn):
        conn.insert_edge(1, 2)
        assert conn.has_edge(2, 1)
        assert not conn.has_edge(1, 3)
        conn.delete_edge(1, 2)
        assert not conn.has_edge(1, 2)

    def test_remove_isolated_vertex(self, conn):
        conn.add_vertex(1)
        conn.insert_edge(2, 3)
        assert conn.remove_vertex_if_isolated(1)
        assert not conn.remove_vertex_if_isolated(2)
        assert conn.num_components == 1


class TestHDTSpecifics:
    def test_levels_grow_under_churn(self):
        hdt = HDTConnectivity(seed=2)
        rng = random.Random(0)
        edges = set()
        for _ in range(3000):
            u, v = rng.sample(range(30), 2)
            e = (min(u, v), max(u, v))
            if e in edges:
                hdt.delete_edge(*e)
                edges.discard(e)
            else:
                hdt.insert_edge(*e)
                edges.add(e)
        assert hdt.num_levels >= 2  # promotions actually happened
        assert hdt.num_edges == len(edges)

    def test_edge_level_and_tree_flags(self):
        hdt = HDTConnectivity(seed=3)
        hdt.insert_edge(1, 2)
        hdt.insert_edge(2, 3)
        hdt.insert_edge(1, 3)
        assert hdt.edge_level(1, 2) == 0
        tree_count = sum(
            hdt.is_tree_edge(u, v) for u, v in [(1, 2), (2, 3), (1, 3)]
        )
        assert tree_count == 2  # spanning tree of a triangle

    def test_component_id(self):
        hdt = HDTConnectivity(seed=4)
        hdt.insert_edge(1, 2)
        hdt.add_vertex(9)
        assert hdt.component_id(1) == hdt.component_id(2)
        assert hdt.component_id(1) != hdt.component_id(9)

    def test_replacement_found_across_levels(self):
        # Build two cliques joined by two bridges; delete one bridge —
        # the other must be found as replacement, possibly after
        # promotions.
        hdt = HDTConnectivity(seed=5)
        for base in (0, 10):
            group = list(range(base, base + 5))
            for i, u in enumerate(group):
                for v in group[i + 1 :]:
                    hdt.insert_edge(u, v)
        hdt.insert_edge(4, 10)
        hdt.insert_edge(0, 14)
        assert not hdt.delete_edge(4, 10)
        assert hdt.connected(0, 12)
        assert hdt.delete_edge(0, 14)
        assert not hdt.connected(0, 12)


class TestRandomizedCrossValidation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_hdt_equals_naive(self, seed):
        rng = random.Random(seed)
        hdt = HDTConnectivity(seed=seed)
        naive = NaiveDynamicConnectivity()
        nodes = list(range(35))
        for v in nodes:
            hdt.add_vertex(v)
            naive.add_vertex(v)
        edges = set()
        for step in range(2500):
            u, v = rng.sample(nodes, 2)
            e = (min(u, v), max(u, v))
            if e in edges and rng.random() < 0.55:
                assert hdt.delete_edge(*e) == naive.delete_edge(*e)
                edges.discard(e)
            elif e not in edges:
                assert hdt.insert_edge(*e) == naive.insert_edge(*e)
                edges.add(e)
            a, b = rng.sample(nodes, 2)
            assert hdt.connected(a, b) == naive.connected(a, b)
            assert hdt.num_components == naive.num_components
            c = rng.choice(nodes)
            assert hdt.component_size(c) == naive.component_size(c)
        hdt_components = sorted(tuple(sorted(s)) for s in hdt.components())
        naive_components = sorted(tuple(sorted(s)) for s in naive.components())
        assert hdt_components == naive_components
