"""Property-based tests for checkpoint/restore identity.

The contract under test: checkpointing after *any* prefix of an event
stream, restoring from the file, and replaying the tail produces the
identical partition, statistics, and reservoir as the uninterrupted
run. This must hold for every connectivity backend, for deletion-heavy
streams (which exercise Random Pairing's compensation counters and
component splits), and for the sharded clusterer.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClustererConfig, ShardedClusterer, StreamingGraphClusterer
from repro.persist import load_checkpoint, save_checkpoint
from repro.streams import add_edge, delete_edge

# Toggle stream over a small vertex universe: repeating a pair deletes
# the edge it previously added, so generated streams are deletion-heavy
# whenever hypothesis repeats pairs (it does, aggressively, on shrink).
_ops = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=100,
)


def _events(ops):
    live: set = set()
    events = []
    for a, b in ops:
        edge = (min(a, b), max(a, b))
        if edge in live:
            events.append(delete_edge(*edge))
            live.discard(edge)
        else:
            events.append(add_edge(*edge))
            live.add(edge)
    return events


def _identical(restored, reference) -> None:
    assert restored.snapshot() == reference.snapshot()
    assert restored.stats.as_dict() == reference.stats.as_dict()
    assert restored.reservoir_edges() == reference.reservoir_edges()


@settings(max_examples=60, deadline=None)
@given(
    ops=_ops,
    cut=st.integers(0, 100),
    seed=st.integers(0, 2**20),
    capacity=st.integers(1, 20),
    backend=st.sampled_from(["hdt", "naive", "lazy"]),
)
def test_checkpoint_at_any_prefix_single(tmp_path_factory, ops, cut, seed,
                                         capacity, backend):
    path = tmp_path_factory.mktemp("ck") / "single.rpk"
    events = _events(ops)
    cut = min(cut, len(events))
    config = ClustererConfig(
        reservoir_capacity=capacity, seed=seed, connectivity_backend=backend
    )

    uninterrupted = StreamingGraphClusterer(config).process(events)

    interrupted = StreamingGraphClusterer(config).process(events[:cut])
    save_checkpoint(interrupted, path, position=cut)
    checkpoint = load_checkpoint(path)
    restored = checkpoint.clusterer.process(checkpoint.remaining(events))

    _identical(restored, uninterrupted)


@settings(max_examples=40, deadline=None)
@given(
    ops=_ops,
    cut=st.integers(0, 100),
    seed=st.integers(0, 2**20),
    num_shards=st.integers(1, 4),
)
def test_checkpoint_at_any_prefix_sharded(tmp_path_factory, ops, cut, seed,
                                          num_shards):
    path = tmp_path_factory.mktemp("ck") / "sharded.rpk"
    events = _events(ops)
    cut = min(cut, len(events))
    config = ClustererConfig(reservoir_capacity=12, seed=seed)

    uninterrupted = ShardedClusterer(config, num_shards).process(events)

    interrupted = ShardedClusterer(config, num_shards).process(events[:cut])
    save_checkpoint(interrupted, path, position=cut)
    checkpoint = load_checkpoint(path)
    restored = checkpoint.clusterer.process(checkpoint.remaining(events))

    assert restored.snapshot() == uninterrupted.snapshot()
    assert restored.shard_events == uninterrupted.shard_events
    assert (
        sorted(e for s in restored.shards for e in s.reservoir_edges())
        == sorted(e for s in uninterrupted.shards for e in s.reservoir_edges())
    )


@settings(max_examples=40, deadline=None)
@given(
    ops=_ops,
    cuts=st.tuples(st.integers(0, 50), st.integers(0, 50)),
    seed=st.integers(0, 2**20),
)
def test_repeated_checkpointing_is_still_identical(tmp_path_factory, ops, cuts, seed):
    """Checkpointing twice along the way (crash → resume → crash → resume)
    must compose: the final state still equals the uninterrupted run."""
    path = tmp_path_factory.mktemp("ck") / "hop.rpk"
    events = _events(ops)
    first, second = sorted(min(c, len(events)) for c in cuts)
    config = ClustererConfig(reservoir_capacity=8, seed=seed)

    uninterrupted = StreamingGraphClusterer(config).process(events)

    stage = StreamingGraphClusterer(config).process(events[:first])
    save_checkpoint(stage, path, position=first)
    stage = load_checkpoint(path).clusterer.process(events[first:second])
    save_checkpoint(stage, path, position=second)
    checkpoint = load_checkpoint(path)
    restored = checkpoint.clusterer.process(checkpoint.remaining(events))

    _identical(restored, uninterrupted)
