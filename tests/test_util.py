"""Unit tests for the utility layer."""

import time

import pytest

from repro.util import (
    PhaseTimer,
    Stopwatch,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
    child_seed,
    make_rng,
    spawn_rngs,
)


class TestRng:
    def test_child_seed_deterministic(self):
        assert child_seed(42, "shard", 3) == child_seed(42, "shard", 3)

    def test_child_seed_label_sensitivity(self):
        assert child_seed(42, "shard", 3) != child_seed(42, "shard", 4)
        assert child_seed(42, "a") != child_seed(43, "a")

    def test_child_seed_label_boundaries(self):
        # ("ab", "c") must differ from ("a", "bc") — labels are delimited.
        assert child_seed(1, "ab", "c") != child_seed(1, "a", "bc")

    def test_child_seed_range(self):
        seed = child_seed(99, "x")
        assert 0 <= seed < 2**63

    def test_make_rng_reproducible(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_spawn_rngs_independent(self):
        a, b = spawn_rngs(1, ["left", "right"])
        assert a.random() != b.random()


class TestTimers:
    def test_stopwatch_accumulates(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.01)
        first = sw.stop()
        sw.start()
        time.sleep(0.01)
        second = sw.stop()
        assert second > first > 0

    def test_stopwatch_context_manager(self):
        with Stopwatch() as sw:
            time.sleep(0.005)
        assert sw.elapsed >= 0.004

    def test_stopwatch_reset(self):
        sw = Stopwatch().start()
        sw.stop()
        sw.reset()
        assert sw.elapsed == 0.0

    def test_phase_timer(self):
        pt = PhaseTimer()
        with pt.phase("a"):
            time.sleep(0.005)
        with pt.phase("a"):
            pass
        pt.add("b", 1.0)
        assert pt.totals["a"] >= 0.004
        assert pt.total == pytest.approx(pt.totals["a"] + 1.0)


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        check_non_negative("x", 0)
        with pytest.raises(ValueError):
            check_non_negative("x", -1)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", -0.1)

    def test_check_type(self):
        check_type("x", 5, int)
        with pytest.raises(TypeError, match="x must be int"):
            check_type("x", "5", int)
        with pytest.raises(TypeError, match="int or float"):
            check_type("x", "5", (int, float))
