"""Unit tests for stream-order transforms."""

import pytest

from repro.graph import graph_from_events
from repro.streams import (
    EventKind,
    adversarial_bridge_first,
    count_kinds,
    insert_delete_stream,
    insert_only_stream,
    shuffled,
    add_edge,
)


class TestShuffled:
    def test_preserves_multiset(self):
        events = [add_edge(i, i + 1) for i in range(50)]
        result = shuffled(events, seed=1)
        assert sorted(e.edge for e in result) == sorted(e.edge for e in events)
        assert result != events  # overwhelmingly likely with 50 events

    def test_deterministic(self):
        events = [add_edge(i, i + 1) for i in range(20)]
        assert shuffled(events, seed=3) == shuffled(events, seed=3)
        assert shuffled(events, seed=3) != shuffled(events, seed=4)


class TestInsertOnly:
    def test_all_adds(self):
        events = insert_only_stream([(1, 2), (3, 4)], seed=0)
        assert count_kinds(events)[EventKind.ADD_EDGE] == 2

    def test_unshuffled_when_seed_none(self):
        events = insert_only_stream([(1, 2), (3, 4), (5, 6)], seed=None)
        assert [e.edge for e in events] == [(1, 2), (3, 4), (5, 6)]


class TestInsertDelete:
    def test_final_state_is_full_edge_set(self):
        edges = [(i, i + 1) for i in range(40)]
        events = insert_delete_stream(edges, churn=0.5, seed=2)
        graph = graph_from_events(events)
        assert sorted(graph.edges()) == sorted(edges)

    def test_event_count(self):
        edges = [(i, i + 1) for i in range(40)]
        events = insert_delete_stream(edges, churn=0.5, seed=2)
        assert len(events) == 40 + 2 * 20

    def test_stream_is_well_formed(self):
        # Strict replay must not raise: adds before deletes per edge.
        from repro.core import ClustererConfig, StreamingGraphClusterer

        edges = [(i, (i + 7) % 30) for i in range(30) if i != (i + 7) % 30]
        events = insert_delete_stream(edges, churn=1.0, seed=3)
        clusterer = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=10, strict=True)
        )
        clusterer.process(events)  # raises StreamError if malformed
        assert clusterer.stats.malformed_events == 0

    def test_zero_churn_is_insert_only(self):
        events = insert_delete_stream([(1, 2), (3, 4)], churn=0.0, seed=4)
        assert count_kinds(events)[EventKind.DELETE_EDGE] == 0

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            insert_delete_stream([(1, 2)], churn=2.0)


class TestAdversarial:
    def test_bridges_come_first(self):
        intra = [(0, 1), (1, 2), (10, 11), (11, 12)]
        bridges = [(2, 10)]
        events = adversarial_bridge_first(intra, bridges, seed=5)
        assert events[0].edge == (2, 10)
        assert len(events) == 5
