"""Unit tests for fixtures and the dataset registry."""

import pytest

from repro.datasets import (
    Dataset,
    barbell,
    dataset_names,
    dataset_statistics,
    karate_club,
    load_dataset,
    two_triangles,
)
from repro.graph import AdjacencyGraph


class TestFixtures:
    def test_karate_shape(self):
        edges, truth = karate_club()
        assert len(edges) == 78
        assert truth.num_vertices == 34
        assert truth.num_clusters == 2
        graph = AdjacencyGraph(edges)
        assert graph.num_vertices == 34
        assert graph.degree(33) == 17  # the instructor hub

    def test_two_triangles(self):
        edges, truth = two_triangles(bridge=True)
        assert len(edges) == 7
        edges_nb, _ = two_triangles(bridge=False)
        assert len(edges_nb) == 6
        assert truth.num_clusters == 2

    def test_barbell(self):
        edges, truth = barbell(clique_size=4, path_length=2)
        graph = AdjacencyGraph(edges)
        assert graph.num_vertices == 10
        assert truth.num_clusters == 3
        with pytest.raises(ValueError):
            barbell(clique_size=1)


class TestRegistry:
    def test_names(self):
        names = dataset_names()
        assert "karate" in names
        assert "dblp_like" in names

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("no_such_graph")

    def test_load_karate_exact(self):
        dataset = load_dataset("karate", use_cache=False)
        assert dataset.num_edges == 78
        assert dataset.truth is not None

    def test_generation_deterministic(self):
        a = load_dataset("email_like", seed=3, use_cache=False)
        b = load_dataset("email_like", seed=3, use_cache=False)
        assert a.edges == b.edges

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        fresh = load_dataset("email_like", seed=4, use_cache=True)
        cached = load_dataset("email_like", seed=4, use_cache=True)
        assert sorted(cached.edges) == sorted(fresh.edges)
        assert cached.truth == fresh.truth
        assert (tmp_path / "cache").exists()

    def test_statistics_fields(self):
        dataset = load_dataset("karate", use_cache=False)
        stats = dataset_statistics(dataset)
        assert stats["vertices"] == 34
        assert stats["edges"] == 78
        assert stats["communities"] == 2
        assert 0 <= stats["mixing"] <= 1

    def test_statistics_without_truth(self):
        dataset = Dataset(name="raw", description="", edges=[(1, 2)], truth=None)
        stats = dataset_statistics(dataset)
        assert stats["communities"] == "-"
