"""Unit tests for the sharded (parallel) clusterer."""

import pytest

from repro.core import (
    ClustererConfig,
    ShardedClusterer,
    StreamingGraphClusterer,
    cluster_stream_parallel,
)
from repro.core.sharded import _mp_context
from repro.streams import (
    add_edge,
    add_vertex,
    delete_edge,
    delete_vertex,
    insert_only_stream,
    planted_partition,
)


@pytest.fixture
def sbm_events():
    graph = planted_partition(120, 3, p_in=0.3, p_out=0.01, seed=21)
    return insert_only_stream(graph.edges, seed=21), graph.truth


def make(num_shards=4, capacity=400, **kwargs) -> ShardedClusterer:
    return ShardedClusterer(
        ClustererConfig(reservoir_capacity=capacity, strict=False, **kwargs),
        num_shards=num_shards,
    )


class TestRouting:
    def test_events_distributed_across_shards(self, sbm_events):
        events, _ = sbm_events
        sharded = make().process(events)
        assert all(count > 0 for count in sharded.shard_events)
        assert sum(sharded.shard_events) == len(events)

    def test_routing_is_deterministic(self, sbm_events):
        events, _ = sbm_events
        a = make().process(events)
        b = make().process(events)
        assert a.shard_events == b.shard_events
        assert a.snapshot() == b.snapshot()

    def test_vertex_events_broadcast(self):
        sharded = make(num_shards=3)
        sharded.apply(add_vertex(7))
        assert all(7 in shard.snapshot() for shard in sharded.shards)

    def test_vertex_delete_broadcast(self):
        sharded = make(num_shards=2)
        sharded.apply(add_edge(1, 2))
        sharded.apply(add_edge(1, 3))
        sharded.apply(delete_vertex(1))
        assert 1 not in sharded.snapshot()


class TestMergedClustering:
    def test_merged_components_union_shards(self, sbm_events):
        events, truth = sbm_events
        sharded = make().process(events)
        merged = sharded.snapshot()
        # Every shard-local same-cluster pair must stay together merged.
        for shard in sharded.shards:
            for u, v in shard.reservoir_edges():
                assert merged.same_cluster(u, v)

    def test_queries_on_unseen_vertices(self):
        sharded = make()
        sharded.apply(add_edge(1, 2))
        assert not sharded.same_cluster(1, 999)
        assert sharded.cluster_members(999) == {999}

    def test_cache_invalidation_on_update(self):
        sharded = make()
        sharded.apply(add_edge(1, 2))
        assert sharded.same_cluster(1, 2)
        sharded.apply(delete_edge(1, 2))
        assert not sharded.same_cluster(1, 2)

    def test_total_reservoir_bounded_by_budget(self, sbm_events):
        events, _ = sbm_events
        sharded = make(num_shards=4, capacity=400).process(events)
        assert sharded.total_reservoir_size <= 400

    def test_shard_balance_in_range(self, sbm_events):
        events, _ = sbm_events
        sharded = make(num_shards=4).process(events)
        assert 1.0 <= sharded.shard_balance <= 4.0
        assert sharded.shard_balance > 3.0  # hashing balances well

    def test_single_shard_matches_plain_clusterer_structure(self, sbm_events):
        events, _ = sbm_events
        sharded = make(num_shards=1, capacity=300).process(events)
        plain = StreamingGraphClusterer(
            ClustererConfig(reservoir_capacity=300, strict=False,
                            seed=sharded.shards[0].config.seed)
        ).process(events)
        assert sharded.snapshot() == plain.snapshot()


class TestSpawnContext:
    def test_drivers_use_spawn_start_method(self):
        """Worker processes must use ``spawn``, never the platform
        default: forked workers inherit the parent's RNG state and open
        descriptors, and results would differ between Linux and macOS."""
        ctx = _mp_context()
        assert ctx.get_start_method() == "spawn"
        assert ctx.Process.__name__ == "SpawnProcess"


class TestMergeCache:
    def test_merge_cached_until_structure_changes(self):
        sharded = make(num_shards=2)
        sharded.apply(add_edge(1, 2))
        sharded.apply(add_edge(3, 4))
        assert sharded.merge_builds == 0
        first = sharded.snapshot()
        assert sharded.merge_builds == 1
        # Read-only queries reuse the cached merge.
        assert sharded.snapshot() is first
        sharded.same_cluster(1, 2)
        sharded.cluster_members(3)
        assert sharded.merge_builds == 1

    def test_noop_events_do_not_rebuild(self):
        sharded = make(num_shards=2)
        sharded.apply(add_edge(1, 2))
        sharded.snapshot()
        builds = sharded.merge_builds
        # Duplicate add under strict=False leaves every shard's
        # structure version untouched, so the merge survives.
        sharded.apply(add_edge(1, 2))
        sharded.snapshot()
        assert sharded.merge_builds == builds

    def test_structural_change_rebuilds_once(self):
        sharded = make(num_shards=2)
        sharded.apply(add_edge(1, 2))
        sharded.snapshot()
        sharded.apply(delete_edge(1, 2))
        assert not sharded.same_cluster(1, 2)
        assert sharded.merge_builds == 2
        sharded.snapshot()
        assert sharded.merge_builds == 2

    def test_cache_survives_state_roundtrip(self):
        sharded = make(num_shards=2)
        sharded.apply(add_edge(1, 2))
        expected = sharded.snapshot()
        restored = ShardedClusterer.from_state(sharded.get_state())
        assert restored.merge_builds == 0
        assert restored.snapshot() == expected
        assert restored.merge_builds == 1


class TestParallelDriver:
    def test_inline_driver_matches_sharded(self, sbm_events):
        events, _ = sbm_events
        config = ClustererConfig(reservoir_capacity=400, strict=False)
        partition, results = cluster_stream_parallel(
            events, config, num_shards=4, pool_processes=1
        )
        sharded = ShardedClusterer(config, num_shards=4).process(events)
        assert partition == sharded.snapshot()
        assert sorted(r.shard for r in results) == [0, 1, 2, 3]
        assert sum(r.events for r in results) == len(events)

    def test_pool_driver_matches_inline(self, sbm_events):
        events, _ = sbm_events
        config = ClustererConfig(reservoir_capacity=200, strict=False)
        inline, _ = cluster_stream_parallel(events, config, 3, pool_processes=1)
        pooled, _ = cluster_stream_parallel(events, config, 3, pool_processes=2)
        assert inline == pooled

    def test_vertex_events_rejected(self):
        config = ClustererConfig(reservoir_capacity=10, strict=False)
        with pytest.raises(ValueError, match="edge events only"):
            cluster_stream_parallel([add_vertex(1)], config, 2)
