"""Unit tests for the weighted streaming clusterer."""

import random

import pytest

from repro.core import ClustererConfig, MaxClusterSize
from repro.core.weighted import WeightedStreamingClusterer


def make(capacity=100, **kwargs):
    return WeightedStreamingClusterer(
        ClustererConfig(reservoir_capacity=capacity, strict=False, **kwargs)
    )


class TestBasics:
    def test_single_edge(self):
        c = make()
        c.add_edge("a", "b", 5.0)
        assert c.same_cluster("a", "b")
        assert c.num_clusters == 1
        assert c.reservoir_size == 1

    def test_reoccurrence_of_resident_edge_is_coalesced(self):
        c = make()
        c.add_edge(1, 2, 1.0)
        c.add_edge(1, 2, 1.0)
        assert c.reservoir_size == 1
        assert c.edges_offered == 2

    def test_weight_validation(self):
        c = make()
        with pytest.raises(ValueError):
            c.add_edge(1, 2, 0.0)

    def test_add_edges_chains(self):
        c = make().add_edges([(1, 2, 1.0), (2, 3, 1.0)])
        assert c.same_cluster(1, 3)

    def test_snapshot_and_members(self):
        c = make().add_edges([(1, 2, 1.0), (3, 4, 1.0)])
        assert c.cluster_members(1) == {1, 2}
        assert c.snapshot().num_clusters == 2

    def test_repr(self):
        assert "reservoir=0/100" in repr(make())


class TestWeightProportionalBehaviour:
    def test_strong_ties_dominate_sample(self):
        rng = random.Random(3)
        c = make(capacity=50)
        strong = [(rng.randrange(0, 20), rng.randrange(20, 40), 100.0)
                  for _ in range(500)]
        weak = [(rng.randrange(40, 60), rng.randrange(60, 80), 0.01)
                for _ in range(500)]
        stream = [pair for pair in strong + weak if pair[0] != pair[1]]
        rng.shuffle(stream)
        c.add_edges(stream)
        sampled = c.sampled_edges()
        strong_sampled = sum(1 for u, v in sampled if u < 40 and v < 40)
        assert strong_sampled > 0.9 * len(sampled)

    def test_separates_strongly_tied_groups(self):
        rng = random.Random(7)
        c = make(capacity=120)
        for _ in range(3000):
            roll = rng.random()
            if roll < 0.45:
                u, v, w = rng.randrange(0, 25), rng.randrange(0, 25), 10.0
            elif roll < 0.9:
                u, v, w = rng.randrange(25, 50), rng.randrange(25, 50), 10.0
            else:
                u, v, w = rng.randrange(0, 25), rng.randrange(25, 50), 0.05
            if u != v:
                c.add_edge(u, v, w)
        assert not c.same_cluster(0, 30)
        sizes = c.snapshot().sizes()
        assert sizes[0] == 25 and sizes[1] == 25

    def test_unweighted_degenerates_to_uniform(self):
        # All weights equal: behaves like plain reservoir clustering.
        rng = random.Random(9)
        c = make(capacity=30)
        for _ in range(500):
            u, v = rng.sample(range(40), 2)
            c.add_edge(u, v, 1.0)
        assert c.reservoir_size == 30


class TestConstraints:
    def test_max_cluster_size_respected(self):
        rng = random.Random(11)
        c = make(capacity=500, constraint=MaxClusterSize(10))
        for _ in range(1500):
            u, v = rng.sample(range(60), 2)
            c.add_edge(u, v, rng.uniform(0.5, 2.0))
        assert c.snapshot().max_cluster_size <= 10
        assert c.vetoes > 0
